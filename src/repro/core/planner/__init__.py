"""Cost-based adaptive execution planning (``engine="auto"``).

This package turns the paper's offline cost arithmetic
(:mod:`repro.core.cost`) into a runtime decision procedure: calibrate the
machine once (:mod:`~repro.core.planner.calibration`), describe the workload
(:mod:`~repro.core.planner.workload`), score every candidate execution
strategy (:mod:`~repro.core.planner.planner`) and hand back an explainable
:class:`~repro.core.planner.plan.Plan`.  The ML estimators consume it through
``engine="auto"``; ``NormalizedMatrix.plan()`` exposes it directly.
"""

from repro.core.planner.calibration import (
    CalibrationProfile,
    cache_path,
    get_profile,
    probe,
    reset_profile_cache,
)
from repro.core.planner.delta_policy import (
    DEFAULT_DELTA_POLICY,
    DeltaDecision,
    DeltaPolicy,
)
from repro.core.planner.memory import (
    batch_rows_for_budget,
    factorized_nbytes,
    materialized_nbytes,
    streamed_batch_count,
)
from repro.core.planner.feedback import (
    PlanOutcome,
    clear_outcomes,
    recent_outcomes,
    record_outcome,
)
from repro.core.planner.plan import Plan, ScoredCandidate
from repro.core.planner.planner import Planner, describe_data
from repro.core.planner.workload import OperatorUse, WorkloadDescriptor

__all__ = [
    "CalibrationProfile",
    "DEFAULT_DELTA_POLICY",
    "DeltaDecision",
    "DeltaPolicy",
    "OperatorUse",
    "Plan",
    "PlanOutcome",
    "Planner",
    "ScoredCandidate",
    "WorkloadDescriptor",
    "clear_outcomes",
    "recent_outcomes",
    "record_outcome",
    "batch_rows_for_budget",
    "cache_path",
    "describe_data",
    "factorized_nbytes",
    "get_profile",
    "materialized_nbytes",
    "probe",
    "reset_profile_cache",
    "streamed_batch_count",
]
