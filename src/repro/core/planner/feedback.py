"""Plan feedback: measured runtime next to predicted cost.

The planner predicts wall-clock seconds per candidate; this module closes
the loop by recording what the chosen plan *actually* took when the fit
ran (:class:`PlanOutcome`), so the cost model can be judged empirically —
the check PR 3 deferred.  Outcomes land in three places:

- attached to the executed :class:`~repro.core.planner.plan.Plan`
  (``plan.outcome``), where ``Plan.explain()`` renders the
  predicted-vs-measured line;
- a bounded process-global window (:func:`recent_outcomes`) for offline
  residual analysis;
- the metrics registry (``repro_plan_outcomes_total`` and the
  ``repro_plan_residual_ratio`` histogram) when observability is on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro import obs

__all__ = ["PlanOutcome", "clear_outcomes", "recent_outcomes", "record_outcome"]

_OUTCOMES_TOTAL = obs.REGISTRY.counter(
    "repro_plan_outcomes_total",
    "Executed plans with a measured runtime recorded",
    labels=("workload", "choice"),
)
_RESIDUAL_RATIO = obs.REGISTRY.histogram(
    "repro_plan_residual_ratio",
    "measured_seconds / predicted_seconds for executed plans",
    buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0, 10.0),
)
_MEASURED_SECONDS = obs.REGISTRY.histogram(
    "repro_plan_measured_seconds",
    "Measured wall-clock seconds of executed plans",
    labels=("workload",),
)


@dataclass(frozen=True)
class PlanOutcome:
    """Measured execution of a plan, alongside its prediction."""

    workload: str
    choice: str                  # chosen candidate label
    predicted_seconds: float
    measured_seconds: float

    @property
    def residual_seconds(self) -> float:
        """measured - predicted (positive: the model was optimistic)."""
        return self.measured_seconds - self.predicted_seconds

    @property
    def ratio(self) -> float:
        """measured / predicted; inf when the prediction was zero."""
        if self.predicted_seconds <= 0.0:
            return float("inf")
        return self.measured_seconds / self.predicted_seconds

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "choice": self.choice,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "residual_seconds": self.residual_seconds,
            "ratio": self.ratio,
        }


_WINDOW = 512
_recent: deque = deque(maxlen=_WINDOW)
_recent_lock = threading.Lock()


def record_outcome(plan, measured_seconds: float) -> Optional[PlanOutcome]:
    """Attach a measured runtime to *plan* and log it globally.

    Returns the :class:`PlanOutcome` (also reachable as ``plan.outcome``),
    or None when *plan* is None (e.g. a fixed-engine fit that never ran
    the planner).
    """
    if plan is None:
        return None
    outcome = PlanOutcome(
        workload=plan.workload.name,
        choice=plan.chosen.label,
        predicted_seconds=float(plan.predicted_seconds),
        measured_seconds=float(measured_seconds),
    )
    # Plan is a frozen dataclass; outcome is deliberately mutable metadata
    # attached after execution, not part of the plan's identity.
    object.__setattr__(plan, "outcome", outcome)
    with _recent_lock:
        _recent.append(outcome)
    _OUTCOMES_TOTAL.labels(workload=outcome.workload, choice=outcome.choice).inc()
    if outcome.predicted_seconds > 0.0:
        _RESIDUAL_RATIO.observe(outcome.ratio)
    _MEASURED_SECONDS.labels(workload=outcome.workload).observe(
        outcome.measured_seconds
    )
    return outcome


def recent_outcomes() -> List[PlanOutcome]:
    """Recorded outcomes, oldest first (bounded window)."""
    with _recent_lock:
        return list(_recent)


def clear_outcomes() -> None:
    with _recent_lock:
        _recent.clear()
