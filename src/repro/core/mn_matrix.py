"""The normalized matrix for general M:N equi-joins.

:class:`MNNormalizedMatrix` implements the extension of Section 3.6 and
Appendices D/E: the join output of a (possibly multi-table) M:N equi-join is
represented as ``T = [I1 R1, ..., Iq Rq]`` where each ``I_i`` is a sparse
indicator matrix with one non-zero per output row and ``R_i`` is the
corresponding base-table feature matrix.  The classic two-table case
``T = [I_S S, I_R R]`` is simply ``q = 2``.

The PK-FK normalized matrix is the special case where the entity table's
indicator is the identity; keeping the two classes separate mirrors the paper
and keeps the PK-FK fast path (no ``I_S`` multiplication for the entity block)
explicit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import NotSupportedError, ShapeError
from repro.la import kernels
from repro.la.types import (
    MatrixLike,
    ensure_2d,
    is_matrix_like,
    normalize_row_indices,
    to_dense,
)
from repro.core.indicator import validate_mn_indicator
from repro.core.materialize import materialize_mn
from repro.core.rewrite import aggregation, crossprod as crossprod_rules
from repro.core.rewrite import inversion, multiplication, scalar_ops

Scalar = Union[int, float, np.floating, np.integer]


def _is_scalar(value: object) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) and not isinstance(value, bool)


class MNNormalizedMatrix:
    """Logical matrix ``T = [I1 R1, ..., Iq Rq]`` for (multi-table) M:N joins.

    Parameters
    ----------
    indicators:
        Sparse indicator matrices ``I_i`` of shape ``(|T'|, n_Ri)``, one per
        component table, all with the same number of rows (the join output
        size).
    attributes:
        Component feature matrices ``R_i`` of shape ``(n_Ri, d_Ri)``.
    transposed:
        Whether the object represents ``T`` or ``T^T``.
    validate / crossprod_method:
        As for :class:`~repro.core.normalized_matrix.NormalizedMatrix`.
    """

    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
                 transposed: bool = False, validate: bool = True,
                 crossprod_method: str = "efficient"):
        if not indicators:
            raise ShapeError("an M:N normalized matrix needs at least one component")
        if len(indicators) != len(attributes):
            raise ShapeError(
                f"got {len(indicators)} indicator matrices but {len(attributes)} attribute matrices"
            )
        if crossprod_method not in ("efficient", "naive"):
            raise ValueError("crossprod_method must be 'efficient' or 'naive'")
        self.indicators = [validate_mn_indicator(i) if validate else i for i in indicators]
        self.attributes = [ensure_2d(r) for r in attributes]
        self.transposed = bool(transposed)
        self.crossprod_method = crossprod_method
        if validate:
            self._validate_shapes()

    @classmethod
    def from_two_tables(cls, entity: MatrixLike, entity_indicator: MatrixLike,
                        attribute: MatrixLike, attribute_indicator: MatrixLike,
                        **kwargs) -> "MNNormalizedMatrix":
        """Build the paper's two-table form ``(S, I_S, I_R, R)``."""
        return cls([entity_indicator, attribute_indicator], [entity, attribute], **kwargs)

    def _validate_shapes(self) -> None:
        n_rows = self.indicators[0].shape[0]
        for i, (indicator, attribute) in enumerate(zip(self.indicators, self.attributes)):
            if indicator.shape[0] != n_rows:
                raise ShapeError(
                    f"indicator {i} has {indicator.shape[0]} rows, expected {n_rows}"
                )
            if indicator.shape[1] != attribute.shape[0]:
                raise ShapeError(
                    f"indicator {i} has {indicator.shape[1]} columns but component matrix "
                    f"{i} has {attribute.shape[0]} rows"
                )

    def _with_attributes(self, attributes: Sequence[MatrixLike]) -> "MNNormalizedMatrix":
        return MNNormalizedMatrix(
            self.indicators, list(attributes), transposed=self.transposed,
            validate=False, crossprod_method=self.crossprod_method,
        )

    # -- incremental maintenance ----------------------------------------------

    #: Monotonic delta version: 0 at construction, bumped by :meth:`apply_delta`.
    version = 0

    def apply_delta(self, table_index: int, delta, policy=None) -> "MNNormalizedMatrix":
        """Successor matrix with *delta* applied to component table *table_index*.

        Semantics as :meth:`NormalizedMatrix.apply_delta
        <repro.core.normalized_matrix.NormalizedMatrix.apply_delta>`: a new
        matrix sharing unchanged components, lazy cache migrated with each
        memoized term patched or invalidated, version bumped.
        """
        from repro.core.delta import migrate_lazy_state

        if not 0 <= table_index < self.num_components:
            raise IndexError(
                f"table_index {table_index} out of range for "
                f"{self.num_components} components"
            )
        attributes = list(self.attributes)
        attributes[table_index] = delta.apply_to(attributes[table_index])
        successor = self._with_attributes(attributes)
        return migrate_lazy_state(self, successor, table_index, delta, policy)

    # -- shape and metadata -------------------------------------------------------

    @property
    def num_components(self) -> int:
        return len(self.attributes)

    @property
    def component_widths(self) -> List[int]:
        return [r.shape[1] for r in self.attributes]

    def column_segments(self) -> List["ColumnSegment"]:
        """Ordered per-component column spans of the logical ``T``.

        One ``"component_i"`` :class:`~repro.core.segments.ColumnSegment`
        per component table (no entity block -- every M:N component is
        indicator-routed); the segments partition ``[0, logical_cols)``.
        """
        from repro.core.segments import build_segments

        return build_segments(None, self.component_widths, "component")

    @property
    def n_features_per_table(self) -> dict:
        """Name -> feature-count mapping of :meth:`column_segments`."""
        from repro.core.segments import segment_widths

        return segment_widths(self.column_segments())

    @property
    def logical_rows(self) -> int:
        return self.indicators[0].shape[0]

    @property
    def logical_cols(self) -> int:
        return sum(self.component_widths)

    @property
    def shape(self) -> tuple:
        if self.transposed:
            return (self.logical_cols, self.logical_rows)
        return (self.logical_rows, self.logical_cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "MNNormalizedMatrix":
        return MNNormalizedMatrix(
            self.indicators, self.attributes, transposed=not self.transposed,
            validate=False, crossprod_method=self.crossprod_method,
        )

    def transpose(self) -> "MNNormalizedMatrix":
        return self.T

    def redundancy_ratio(self) -> float:
        """Materialized size over total base size; large when the join fans out."""
        materialized = self.logical_rows * self.logical_cols
        base = sum(r.shape[0] * r.shape[1] for r in self.attributes)
        return materialized / base if base else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MNNormalizedMatrix(shape={self.shape}, components={self.num_components}, "
            f"widths={self.component_widths}, transposed={self.transposed})"
        )

    # -- row selection ---------------------------------------------------------------

    def take_rows(self, row_indices) -> "MNNormalizedMatrix":
        """Return an M:N normalized matrix restricted to the given output rows.

        A row of ``T = [I1 R1, ..., Iq Rq]`` is one join-output tuple, so row
        selection slices every indicator matrix while sharing the component
        matrices unchanged -- train/test splits and mini-batch selection stay
        factorized, exactly as for the star-schema
        :meth:`~repro.core.normalized_matrix.NormalizedMatrix.take_rows`.
        Accepts integer index arrays (duplicates/reordering allowed) or a
        boolean mask, with the same out-of-range validation; only valid on an
        untransposed matrix.
        """
        if self.transposed:
            raise NotSupportedError("take_rows is only defined for untransposed matrices")
        indices = normalize_row_indices(row_indices, self.logical_rows)
        new_indicators = [kernels.take_indicator_rows(i, indices)
                          for i in self.indicators]
        return MNNormalizedMatrix(
            new_indicators, self.attributes, transposed=False,
            validate=False, crossprod_method=self.crossprod_method,
        )

    # -- streaming mini-batch execution ----------------------------------------------

    def batches(self, target=None, batch_size: Optional[int] = None,
                shuffle: bool = False, seed: Optional[int] = 0,
                memory_budget: Optional[float] = None):
        """Iterate this matrix as factorized row batches; see
        :meth:`NormalizedMatrix.batches`."""
        from repro.core.stream import NormalizedBatchIterator

        return NormalizedBatchIterator(self, target=target, batch_size=batch_size,
                                       shuffle=shuffle, seed=seed,
                                       memory_budget=memory_budget)

    def stream(self, batch_rows: Optional[int] = None,
               memory_budget: Optional[float] = None):
        """Out-of-core streamed view; see :meth:`NormalizedMatrix.stream`."""
        from repro.core.stream import StreamedMatrix

        return StreamedMatrix(self, batch_rows=batch_rows, memory_budget=memory_budget)

    # -- sharded parallel execution --------------------------------------------------

    def shard(self, n_shards: int, pool=None):
        """Row-shard this matrix for parallel factorized execution.

        Slices every indicator matrix by rows while sharing the component
        matrices; see :meth:`NormalizedMatrix.shard` for the pool options.
        """
        from repro.core.shard import ShardedNormalizedMatrix

        return ShardedNormalizedMatrix.from_normalized(self, n_shards, pool=pool)

    # -- lazy evaluation -----------------------------------------------------------

    def lazy(self, cache=None):
        """Lazy expression leaf over this matrix; see :meth:`NormalizedMatrix.lazy`."""
        from repro.core.lazy import lazy_view

        return lazy_view(self, cache=cache)

    # -- cost-based planning ---------------------------------------------------------

    def plan(self, workload=None, planner=None):
        """Score candidate execution strategies; see :meth:`NormalizedMatrix.plan`."""
        from repro.core.planner import Planner

        planner = planner or Planner(include_chunked=True)
        return planner.plan(self, workload)

    # -- materialization -----------------------------------------------------------

    def materialize(self) -> MatrixLike:
        matrix = materialize_mn(self.indicators, self.attributes)
        return matrix.T if self.transposed else matrix

    def to_dense(self) -> np.ndarray:
        return to_dense(self.materialize())

    # -- element-wise scalar operators ----------------------------------------------

    def _scalar_result(self, op: str, scalar: Scalar, reverse: bool) -> "MNNormalizedMatrix":
        attributes = scalar_ops.scalar_op_mn(self.attributes, op, float(scalar), reverse=reverse)
        return self._with_attributes(attributes)

    def __mul__(self, other):
        if _is_scalar(other):
            return self._scalar_result("*", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "*", reverse=False)
        return NotImplemented

    def __rmul__(self, other):
        if _is_scalar(other):
            return self._scalar_result("*", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "*", reverse=True)
        return NotImplemented

    def __add__(self, other):
        if _is_scalar(other):
            return self._scalar_result("+", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "+", reverse=False)
        return NotImplemented

    def __radd__(self, other):
        if _is_scalar(other):
            return self._scalar_result("+", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "+", reverse=True)
        return NotImplemented

    def __sub__(self, other):
        if _is_scalar(other):
            return self._scalar_result("-", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "-", reverse=False)
        return NotImplemented

    def __rsub__(self, other):
        if _is_scalar(other):
            return self._scalar_result("-", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "-", reverse=True)
        return NotImplemented

    def __truediv__(self, other):
        if _is_scalar(other):
            return self._scalar_result("/", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "/", reverse=False)
        return NotImplemented

    def __rtruediv__(self, other):
        if _is_scalar(other):
            return self._scalar_result("/", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "/", reverse=True)
        return NotImplemented

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self._scalar_result("**", exponent, reverse=False)
        return NotImplemented

    def __neg__(self):
        return self._scalar_result("*", -1.0, reverse=False)

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "MNNormalizedMatrix":
        """Apply an element-wise scalar function ``f(T)``."""
        attributes = scalar_ops.function_mn(self.attributes, fn)
        return self._with_attributes(attributes)

    def exp(self) -> "MNNormalizedMatrix":
        return self.apply(np.exp)

    def sqrt(self) -> "MNNormalizedMatrix":
        return self.apply(np.sqrt)

    def _elementwise_matrix_op(self, other: MatrixLike, op: str, reverse: bool) -> MatrixLike:
        """Non-factorizable element-wise matrix arithmetic: materialize and apply."""
        materialized = to_dense(self.materialize())
        other_dense = to_dense(ensure_2d(other))
        if materialized.shape != other_dense.shape:
            raise ShapeError(
                f"element-wise op: shape mismatch {materialized.shape} vs {other_dense.shape}"
            )
        ops = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}
        fn = ops[op]
        if reverse:
            return fn(other_dense, materialized)
        return fn(materialized, other_dense)

    # -- aggregations -----------------------------------------------------------------

    def rowsums(self) -> np.ndarray:
        if self.transposed:
            return aggregation.colsums_mn(self.indicators, self.attributes).T
        return aggregation.rowsums_mn(self.indicators, self.attributes)

    def colsums(self) -> np.ndarray:
        if self.transposed:
            return aggregation.rowsums_mn(self.indicators, self.attributes).T
        return aggregation.colsums_mn(self.indicators, self.attributes)

    def total_sum(self) -> float:
        return aggregation.sum_mn(self.indicators, self.attributes)

    def sum(self, axis: Optional[int] = None):
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- multiplication ------------------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, MNNormalizedMatrix):
            return self.__matmul__(other.materialize())
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            result = multiplication.rmm_mn(self.indicators, self.attributes, to_dense(other).T)
            return result.T
        return multiplication.lmm_mn(self.indicators, self.attributes, other)

    def __rmatmul__(self, other):
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            result = multiplication.lmm_mn(self.indicators, self.attributes, to_dense(other).T)
            return result.T
        return multiplication.rmm_mn(self.indicators, self.attributes, other)

    def dot(self, other) -> MatrixLike:
        return self.__matmul__(other)

    # -- cross-product and inversion --------------------------------------------------------

    def crossprod(self, method: Optional[str] = None) -> np.ndarray:
        method = method or self.crossprod_method
        if self.transposed:
            return crossprod_rules.gram_transposed_mn(self.indicators, self.attributes)
        if method == "naive":
            return crossprod_rules.crossprod_mn_naive(self.indicators, self.attributes)
        return crossprod_rules.crossprod_mn_efficient(self.indicators, self.attributes)

    def gram(self) -> np.ndarray:
        return self.crossprod()

    def ginv(self) -> np.ndarray:
        plain = inversion.ginv_mn(
            self.indicators, self.attributes,
            materialize_fn=lambda: materialize_mn(self.indicators, self.attributes),
        )
        return plain.T if self.transposed else plain

    def solve(self, rhs: MatrixLike, ridge: float = 0.0) -> np.ndarray:
        """Least-squares solve via the factorized normal equations (see
        :meth:`NormalizedMatrix.solve`)."""
        from repro.la.ops import solve_regularized

        rhs = ensure_2d(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise ShapeError(
                f"solve: right-hand side has {rhs.shape[0]} rows but the matrix has {self.shape[0]}"
            )
        gram = self.crossprod()
        projected = self.T @ rhs
        return solve_regularized(gram, projected, ridge=ridge)

    # -- equality helpers -----------------------------------------------------------------

    def equals_materialized(self, other: MatrixLike, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        mine = to_dense(self.materialize())
        theirs = to_dense(ensure_2d(other))
        if mine.shape != theirs.shape:
            return False
        return bool(np.allclose(mine, theirs, rtol=rtol, atol=atol))
