"""Materialization of normalized matrices.

Materialization produces the single denormalized matrix
``T = [S, K1 R1, ..., Kq Rq]`` (star schema) or ``T = [I1 R1, ..., Iq Rq]``
(M:N).  The library uses it in three places:

* the *materialized baseline* ("M" in the paper's plots) that every benchmark
  compares against,
* the fallback path for non-factorizable operators (element-wise matrix
  arithmetic with an arbitrary regular matrix, Section 3.3.7), and
* the fallback inside ``ginv`` when the Gram matrix is rank-deficient.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.la.ops import hstack, matmul
from repro.la.types import MatrixLike


def materialize_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                     attributes: Sequence[MatrixLike]) -> MatrixLike:
    """Materialize ``T = [S, K1 R1, ..., Kq Rq]`` for a star-schema normalized matrix."""
    blocks: List[MatrixLike] = []
    if entity is not None and entity.shape[1] > 0:
        blocks.append(entity)
    for indicator, attribute in zip(indicators, attributes):
        blocks.append(matmul(indicator, attribute))
    return hstack(blocks)


def materialize_mn(indicators: Sequence[MatrixLike],
                   attributes: Sequence[MatrixLike]) -> MatrixLike:
    """Materialize ``T = [I1 R1, ..., Iq Rq]`` for an M:N normalized matrix."""
    blocks = [matmul(indicator, attribute) for indicator, attribute in zip(indicators, attributes)]
    return hstack(blocks)


def materialize(normalized) -> MatrixLike:
    """Materialize any normalized matrix (dispatches on the object's own method)."""
    return normalized.materialize()
