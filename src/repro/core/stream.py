"""Out-of-core mini-batch streaming over normalized (and plain) matrices.

Factorization makes mini-batching nearly free: a row batch of the logical
join output ``T`` is just a ``take_rows`` slice of the entity matrix and the
indicator matrices, while the attribute tables ``R_k`` are shared untouched
across every batch (and across epochs).  This module provides the two pieces
the streaming execution layer is built on:

* :class:`NormalizedBatchIterator` -- yields factorized row batches of a data
  matrix (plus aligned target slices) with a configurable ``batch_size``,
  seeded shuffling, and a ``memory_budget`` mode that derives the batch size
  from the planner's memory model
  (:func:`repro.core.planner.memory.batch_rows_for_budget`).  The ML
  estimators' ``solver="sgd"`` / ``partial_fit`` paths consume it, as does
  the chunk-wise CSV ingestion in :mod:`repro.relational.csv_io`.
* :class:`StreamedMatrix` -- an out-of-core execution backend for the Table-1
  operator surface: every operator visits the source one row batch at a time
  and reduces the partials (concatenate for row-shaped results, sum for
  column/Gram-shaped ones), so no operator ever materializes an intermediate
  larger than one batch.  Scalar operators stay closed -- they transform the
  *source* (a normalized source stays normalized), so chained expressions
  like ``(2 * T) @ w`` still stream factorized batches.

Both accept any operand with a ``take_rows`` row-selection method
(:class:`~repro.core.normalized_matrix.NormalizedMatrix`,
:class:`~repro.core.mn_matrix.MNNormalizedMatrix`) as well as plain
dense/sparse matrices (sliced directly), so factorized and materialized
streaming runs share one code path -- which is what the equivalence tests and
the streaming benchmark compare.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Union

import numpy as np

from repro import obs
from repro.exceptions import NotSupportedError, ShapeError
from repro.la import generic
from repro.la import ops as la_ops
from repro.la.types import (
    MatrixLike,
    ensure_2d,
    is_matrix_like,
    normalize_row_indices,
    to_dense,
)

Scalar = Union[int, float, np.floating, np.integer]

_STREAM_EPOCHS = obs.REGISTRY.counter(
    "repro_stream_epochs_total", "Full passes started over a streamed source"
)
_STREAM_BATCHES = obs.REGISTRY.counter(
    "repro_stream_batches_total", "Mini-batches yielded by the streaming loop"
)
_STREAM_ROWS = obs.REGISTRY.counter(
    "repro_stream_rows_total", "Rows yielded by the streaming loop"
)
_STREAM_EPOCH_SECONDS = obs.REGISTRY.histogram(
    "repro_stream_epoch_seconds", "Wall-clock seconds per completed epoch pass"
)
_STREAM_ROWS_PER_SEC = obs.REGISTRY.gauge(
    "repro_stream_rows_per_second", "Throughput of the most recent epoch pass"
)

_PY_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "**": operator.pow,
}

_EW_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}


def _is_scalar(value: object) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) and not isinstance(value, bool)


def take_rows(data, indices) -> object:
    """Row selection across operand families.

    Normalized matrices slice through their own ``take_rows`` (entity and
    indicators sliced, attribute tables shared); plain dense/sparse matrices
    are sliced directly.  Index validation matches
    :func:`repro.la.types.normalize_row_indices` everywhere.
    """
    if hasattr(data, "take_rows"):
        return data.take_rows(indices)
    matrix = ensure_2d(data)
    indices = normalize_row_indices(indices, matrix.shape[0])
    return matrix[indices, :]


def slice_rows(data, start: int, stop: int) -> object:
    """Contiguous row range ``[start, stop)`` of *data* -- the hot batch cut.

    Equivalent to ``take_rows(data, np.arange(start, stop))`` but slices with
    Python ranges, which keeps dense entity slices zero-copy views and turns
    the indicator cut into a cheap CSR ``indptr`` slice instead of a fancy
    gather -- the difference is most of the per-batch overhead of an
    unshuffled epoch.
    """
    if hasattr(data, "take_rows"):
        from repro.core.shard import _slice_piece

        try:
            return _slice_piece(data, start, stop)
        except TypeError:  # an operand family _slice_piece does not know
            return data.take_rows(np.arange(start, stop))
    return ensure_2d(data)[start:stop, :]


@dataclass
class Batch:
    """One mini-batch: the row-sliced data matrix, its row indices, the target slice."""

    data: object
    indices: np.ndarray
    target: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.indices.shape[0])


class NormalizedBatchIterator:
    """Iterate a data matrix (and optional target) as factorized row batches.

    Parameters
    ----------
    data:
        The data matrix: a :class:`~repro.core.normalized_matrix.NormalizedMatrix`,
        an :class:`~repro.core.mn_matrix.MNNormalizedMatrix`, or a plain
        dense/sparse matrix.  Must be untransposed.
    target:
        Optional target aligned with the data rows; sliced alongside every
        batch.  1-D targets are promoted to column vectors.
    batch_size:
        Rows per batch.  Defaults to one full-size batch (``n_rows``) unless
        *memory_budget* is given.
    shuffle:
        Draw a fresh seeded permutation per epoch (per ``__iter__`` call).
        With ``shuffle=False`` batches are contiguous row ranges in order, and
        a batch that covers every row is the original operand itself -- so one
        epoch at ``batch_size >= n_rows`` executes bit-for-bit like a
        full-batch pass.
    seed:
        Seed for the shuffling RNG; epochs draw successive permutations from
        one generator, so a whole multi-epoch run is reproducible.
    memory_budget:
        When *batch_size* is not given, pick it so one (densified) batch fits
        in this many bytes, via the planner's memory model
        (:func:`~repro.core.planner.memory.batch_rows_for_budget`).
    """

    def __init__(self, data, target=None, batch_size: Optional[int] = None,
                 shuffle: bool = False, seed: Optional[int] = 0,
                 memory_budget: Optional[float] = None):
        if getattr(data, "transposed", False):
            raise NotSupportedError("batch iteration is only defined for untransposed matrices")
        if not (hasattr(data, "take_rows") or is_matrix_like(data)):
            raise NotSupportedError(
                f"cannot stream batches of {type(data).__name__}: it has no row "
                "selection surface (take_rows)"
            )
        self.data = data
        self.n_rows = int(data.shape[0])
        if target is not None:
            target = ensure_2d(np.asarray(target))
            if target.shape[0] != self.n_rows:
                raise ShapeError(
                    f"target has {target.shape[0]} rows but the data matrix has {self.n_rows}"
                )
        self.target = target
        if batch_size is not None:
            batch_size = int(batch_size)
            if batch_size < 1:
                raise ValueError("batch_size must be at least 1")
        elif memory_budget is not None:
            from repro.core.planner.memory import batch_rows_for_budget

            batch_size = batch_rows_for_budget(data, memory_budget)
        else:
            batch_size = max(self.n_rows, 1)
        self.batch_size = batch_size
        self.shuffle = bool(shuffle)
        self._rng = np.random.default_rng(seed)

    @property
    def num_batches(self) -> int:
        """Batches per epoch (0 for an empty matrix)."""
        return -(-self.n_rows // self.batch_size) if self.n_rows else 0

    def __len__(self) -> int:
        return self.num_batches

    def __iter__(self) -> Iterator[Batch]:
        record = obs.enabled()
        if record:
            epoch_started = time.perf_counter()
            _STREAM_EPOCHS.inc()
        order = self._rng.permutation(self.n_rows) if self.shuffle else None
        try:
            yield from self._iter_batches(order, record)
        finally:
            if record:
                elapsed = time.perf_counter() - epoch_started
                _STREAM_EPOCH_SECONDS.observe(elapsed)
                if elapsed > 0:
                    _STREAM_ROWS_PER_SEC.set(self.n_rows / elapsed)

    def _iter_batches(self, order, record: bool) -> Iterator[Batch]:
        for start in range(0, self.n_rows, self.batch_size):
            stop = min(start + self.batch_size, self.n_rows)
            if record:
                _STREAM_BATCHES.inc()
                _STREAM_ROWS.inc(stop - start)
            if order is None:
                if start == 0 and stop == self.n_rows:
                    # Identity fast path: a full-coverage in-order batch *is*
                    # the matrix -- no slicing, so full-batch equivalence is
                    # bit-for-bit by construction.
                    yield Batch(data=self.data, indices=np.arange(self.n_rows),
                                target=self.target)
                    continue
                indices = np.arange(start, stop)
                target = self.target[start:stop] if self.target is not None else None
                yield Batch(data=slice_rows(self.data, start, stop),
                            indices=indices, target=target)
                continue
            indices = order[start:stop]
            target = self.target[indices] if self.target is not None else None
            yield Batch(data=take_rows(self.data, indices), indices=indices, target=target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NormalizedBatchIterator(rows={self.n_rows}, batch_size={self.batch_size}, "
                f"batches={self.num_batches}, shuffle={self.shuffle})")


def _batch_op(batch, fn_name: str, generic_fn: Callable):
    """Call a named operator on a batch, falling back to the generic LA surface."""
    method = getattr(batch, fn_name, None)
    if method is not None:
        return method()
    return generic_fn(batch)


class StreamedMatrix:
    """Out-of-core streamed execution of the Table-1 operator surface.

    Wraps a row-selectable source (normalized or plain) and executes every
    operator one row batch at a time through a
    :class:`NormalizedBatchIterator`, reducing the partials exactly like the
    sharded backend does -- concatenate row-shaped results, sum column- and
    Gram-shaped ones -- except that only one batch is resident at a time:

    ==================  =========================================
    operator            reduction over per-batch partials
    ==================  =========================================
    ``T @ X`` (LMM)     concatenate rows (dense)
    ``X @ T`` (RMM)     sum of ``X[:, rows] @ T_b``
    ``T^T @ Y``         sum of ``T_b^T @ Y_b``
    ``crossprod(T)``    sum of ``crossprod(T_b)``
    ``rowSums``         concatenate; ``colSums``/``sum``: sum
    scalar ops, ``f(T)``  recorded as pending per-batch transforms
    ==================  =========================================

    Scalar operators and ``apply`` are *deferred*: they record an
    element-wise transform on the wrapper (no data is touched), and every
    later operator applies the composed transform to one densified batch at
    a time -- so even ``(2 * T).exp() @ w`` never holds more than one
    transformed batch resident, and sparse plain sources work (scipy rejects
    ``sparse + scalar``; a densified batch does not).

    Transposition flips a flag; the transposed operators route through the
    Appendix A identities so the batches themselves stay untransposed.  The
    non-factorizable element-wise matrix ops (Section 3.3.7) densify one
    batch at a time and return a plain matrix, mirroring the eager classes.
    """

    __array_ufunc__ = None
    # Above plain matrices and the normalized classes (1000) so that mixed
    # expressions resolve to the streamed overloads.
    __array_priority__ = 1300

    def __init__(self, source, batch_rows: Optional[int] = None,
                 memory_budget: Optional[float] = None, transposed: bool = False,
                 transform: Optional[Callable[[np.ndarray], np.ndarray]] = None):
        if getattr(source, "transposed", False):
            raise NotSupportedError(
                "StreamedMatrix wraps an untransposed source; use the wrapper's T"
            )
        probe = NormalizedBatchIterator(source, batch_size=batch_rows,
                                        memory_budget=memory_budget)
        self.source = source
        self.batch_rows = probe.batch_size
        self.transposed = bool(transposed)
        #: composed pending element-wise transform, applied per batch.
        self._transform = transform

    # -- construction helpers -------------------------------------------------

    def _iterator(self) -> NormalizedBatchIterator:
        return NormalizedBatchIterator(self.source, batch_size=self.batch_rows)

    def _clone(self, transposed: Optional[bool] = None,
               transform: Optional[Callable] = None) -> "StreamedMatrix":
        return StreamedMatrix(
            self.source, batch_rows=self.batch_rows,
            transposed=self.transposed if transposed is None else transposed,
            transform=self._transform if transform is None else transform,
        )

    def apply_delta(self, table_index: int, delta, policy=None) -> "StreamedMatrix":
        """Streamed view over the post-delta source (see the source's method).

        Only meaningful for normalized sources; the delta is applied to the
        wrapped matrix and the streaming parameters (batch size, transpose
        flag, pending transform) carry over unchanged.
        """
        if not hasattr(self.source, "apply_delta"):
            raise NotSupportedError(
                f"cannot delta-patch a streamed {type(self.source).__name__}: "
                "the source has no apply_delta surface"
            )
        patched = self.source.apply_delta(table_index, delta, policy=policy)
        return StreamedMatrix(
            patched, batch_rows=self.batch_rows, transposed=self.transposed,
            transform=self._transform,
        )

    def _batch_operand(self, data):
        """One batch's operand with the pending transform applied (if any).

        Without a pending transform the batch stays in its native form -- a
        factorized slice for normalized sources -- so operators run through
        the factorized rewrites.  With one, the batch is densified and the
        composed transform applied; only this one batch-sized array is ever
        resident.
        """
        if self._transform is None:
            return data
        dense = to_dense(data.materialize() if hasattr(data, "materialize") else data)
        return self._transform(dense)

    # -- shape and metadata ---------------------------------------------------

    @property
    def logical_rows(self) -> int:
        return int(self.source.shape[0])

    @property
    def logical_cols(self) -> int:
        return int(self.source.shape[1])

    @property
    def num_batches(self) -> int:
        return self._iterator().num_batches

    @property
    def shape(self) -> tuple:
        if self.transposed:
            return (self.logical_cols, self.logical_rows)
        return (self.logical_rows, self.logical_cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "StreamedMatrix":
        return self._clone(transposed=not self.transposed)

    def transpose(self) -> "StreamedMatrix":
        return self.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamedMatrix(shape={self.shape}, batch_rows={self.batch_rows}, "
                f"batches={self.num_batches}, transposed={self.transposed})")

    # -- materialization ------------------------------------------------------

    def materialize(self) -> np.ndarray:
        parts = []
        for batch in self._iterator():
            operand = self._batch_operand(batch.data)
            parts.append(to_dense(operand.materialize()
                                  if hasattr(operand, "materialize") else operand))
        matrix = np.vstack(parts) if parts else np.zeros(
            (0, self.logical_cols))
        return matrix.T if self.transposed else matrix

    def to_dense(self) -> np.ndarray:
        return to_dense(self.materialize())

    # -- element-wise scalar operators ----------------------------------------

    def _with_elementwise(self, fn: Callable[[np.ndarray], np.ndarray]
                          ) -> "StreamedMatrix":
        """Record *fn* as a pending per-batch transform (no data touched now)."""
        prev = self._transform
        composed = fn if prev is None else (lambda a: fn(prev(a)))
        clone = self._clone()
        clone._transform = composed
        return clone

    def _scalar_result(self, op: str, scalar: Scalar, reverse: bool) -> "StreamedMatrix":
        fn = _PY_OPS[op]
        scalar = float(scalar)
        if reverse:
            return self._with_elementwise(lambda a: fn(scalar, a))
        return self._with_elementwise(lambda a: fn(a, scalar))

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "StreamedMatrix":
        """Element-wise scalar function ``f(T)``, deferred to per-batch application."""
        return self._with_elementwise(fn)

    def exp(self) -> "StreamedMatrix":
        return self.apply(np.exp)

    def log(self) -> "StreamedMatrix":
        return self.apply(np.log)

    def sqrt(self) -> "StreamedMatrix":
        return self.apply(np.sqrt)

    def _elementwise_matrix_op(self, other: MatrixLike, op: str, reverse: bool) -> np.ndarray:
        """Non-factorizable element-wise matrix arithmetic, one batch at a time."""
        other = ensure_2d(other)
        if tuple(other.shape) != self.shape:
            raise ShapeError(
                f"element-wise op: shape mismatch {self.shape} vs {tuple(other.shape)}"
            )
        if self.transposed:
            plain = self._clone(transposed=False)
            return plain._elementwise_matrix_op(to_dense(other).T, op, reverse).T
        fn = _EW_UFUNCS[op]
        parts = []
        for batch in self._iterator():
            operand = self._batch_operand(batch.data)
            dense = to_dense(operand.materialize()
                             if hasattr(operand, "materialize") else operand)
            other_slice = to_dense(other[batch.indices, :])
            parts.append(fn(other_slice, dense) if reverse else fn(dense, other_slice))
        return np.vstack(parts) if parts else np.zeros(self.shape)

    def _binary(self, op: str, other, reverse: bool):
        if _is_scalar(other):
            return self._scalar_result(op, other, reverse=reverse)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, op, reverse=reverse)
        return NotImplemented

    def __mul__(self, other):
        return self._binary("*", other, reverse=False)

    def __rmul__(self, other):
        return self._binary("*", other, reverse=True)

    def __add__(self, other):
        return self._binary("+", other, reverse=False)

    def __radd__(self, other):
        return self._binary("+", other, reverse=True)

    def __sub__(self, other):
        return self._binary("-", other, reverse=False)

    def __rsub__(self, other):
        return self._binary("-", other, reverse=True)

    def __truediv__(self, other):
        return self._binary("/", other, reverse=False)

    def __rtruediv__(self, other):
        return self._binary("/", other, reverse=True)

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self._scalar_result("**", exponent, reverse=False)
        return NotImplemented

    def __neg__(self):
        return self._scalar_result("*", -1.0, reverse=False)

    # -- aggregations ----------------------------------------------------------

    def _rowsums_plain(self) -> np.ndarray:
        parts = [to_dense(_batch_op(self._batch_operand(b.data), "rowsums",
                                    generic.rowsums))
                 for b in self._iterator()]
        return np.vstack(parts) if parts else np.zeros((0, 1))

    def _colsums_plain(self) -> np.ndarray:
        total = np.zeros((1, self.logical_cols))
        for batch in self._iterator():
            total = total + to_dense(_batch_op(self._batch_operand(batch.data),
                                               "colsums", generic.colsums))
        return total

    def rowsums(self) -> np.ndarray:
        if self.transposed:
            return self._colsums_plain().T
        return self._rowsums_plain()

    def colsums(self) -> np.ndarray:
        if self.transposed:
            return self._rowsums_plain().T
        return self._colsums_plain()

    def total_sum(self) -> float:
        return float(sum(float(_batch_op(self._batch_operand(b.data), "total_sum",
                                         generic.total_sum))
                         for b in self._iterator()))

    def sum(self, axis: Optional[int] = None):
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- multiplication ---------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, StreamedMatrix):
            other = other.materialize()
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            # T^T Y = sum_b T_b^T Y_b (Y row-aligned with the batches).
            if other.shape[0] != self.logical_rows:
                raise ShapeError(
                    f"matmul: inner dimensions do not agree {self.shape} @ {tuple(other.shape)}"
                )
            total = np.zeros((self.logical_cols, other.shape[1]))
            for batch in self._iterator():
                operand = self._batch_operand(batch.data)
                total = total + to_dense(operand.T @ other[batch.indices, :])
            return total
        if other.shape[0] != self.logical_cols:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {self.shape} @ {tuple(other.shape)}"
            )
        parts = [to_dense(self._batch_operand(b.data) @ other)
                 for b in self._iterator()]
        return np.vstack(parts) if parts else np.zeros((0, other.shape[1]))

    def __rmatmul__(self, other):
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            # X T^T = (T X^T)^T: a streamed LMM whose parts concatenate.
            if other.shape[1] != self.logical_cols:
                raise ShapeError(
                    f"matmul: inner dimensions do not agree {tuple(other.shape)} @ {self.shape}"
                )
            other_t = to_dense(other).T
            parts = [to_dense(self._batch_operand(b.data) @ other_t)
                     for b in self._iterator()]
            stacked = np.vstack(parts) if parts else np.zeros((0, other.shape[0]))
            return stacked.T
        if other.shape[1] != self.logical_rows:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {tuple(other.shape)} @ {self.shape}"
            )
        other = to_dense(other)
        total = np.zeros((other.shape[0], self.logical_cols))
        for batch in self._iterator():
            total = total + to_dense(other[:, batch.indices]
                                     @ self._batch_operand(batch.data))
        return total

    def dot(self, other):
        return self.__matmul__(other)

    # -- cross-product and solve -------------------------------------------------

    def crossprod(self, method: Optional[str] = None) -> np.ndarray:
        """``crossprod(T) = T^T T`` as a sum of per-batch Gram matrices.

        With the transpose flag set the result is the row-Gram ``T T^T`` --
        inherently ``n x n``, so it is assembled from streamed LMM columns
        rather than batch Grams (still never materializing ``T`` itself).
        """
        if self.transposed:
            plain = self._clone(transposed=False)
            blocks: List[np.ndarray] = []
            for batch in self._iterator():
                operand = self._batch_operand(batch.data)
                right = to_dense(operand.materialize()
                                 if hasattr(operand, "materialize") else operand)
                blocks.append(to_dense(plain @ right.T))
            return np.hstack(blocks) if blocks else np.zeros((0, 0))
        total = np.zeros((self.logical_cols, self.logical_cols))
        for batch in self._iterator():
            operand = self._batch_operand(batch.data)
            if hasattr(operand, "crossprod"):
                part = operand.crossprod(method) if method else operand.crossprod()
            else:
                part = la_ops.crossprod(operand)
            total = total + to_dense(part)
        return total

    def gram(self) -> np.ndarray:
        return self.crossprod()

    def solve(self, rhs: MatrixLike, ridge: float = 0.0) -> np.ndarray:
        """Least-squares solve via the streamed, factorized normal equations."""
        rhs = ensure_2d(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise ShapeError(
                f"solve: right-hand side has {rhs.shape[0]} rows but the matrix has {self.shape[0]}"
            )
        gram = self.crossprod()
        projected = to_dense(self.T @ rhs)
        return la_ops.solve_regularized(gram, projected, ridge=ridge)

    # -- equality helpers ---------------------------------------------------------

    def equals_materialized(self, other: MatrixLike, rtol: float = 1e-9, atol: float = 1e-9
                            ) -> bool:
        mine = self.to_dense()
        theirs = to_dense(ensure_2d(other))
        if mine.shape != theirs.shape:
            return False
        return bool(np.allclose(mine, theirs, rtol=rtol, atol=atol))
