"""Column-segment metadata of normalized matrices.

The (virtual) join output ``T`` of a normalized matrix is a horizontal
concatenation of per-table blocks -- ``[S, K1 R1, ..., Kq Rq]`` for the
star-schema class, ``[I1 R1, ..., Iq Rq]`` for the M:N class.  Until now the
per-table column spans were implicit in the rewrite rules (each rule slices
its operand by accumulating widths on the fly); this module makes them a
first-class, inspectable property:

* :class:`ColumnSegment` -- one named half-open column span ``[start, stop)``
  of the logical ``T``, tied back to the base table it comes from.
* ``NormalizedMatrix.column_segments()`` / ``MNNormalizedMatrix.column_segments()``
  return the ordered segment list; ``n_features_per_table`` is the matching
  name -> width mapping.
* :func:`schema_fingerprint` -- a stable digest of the segment structure,
  used by the serving subsystem (:mod:`repro.serve`) to bind exported model
  weights to the schema they were trained on and reject mismatches.

The fingerprint deliberately covers only the *column* structure (matrix kind,
segment names and widths).  Attribute-table **row counts are excluded** so
that serving-time updates to an attribute table (new products, refreshed
features -- the HTAP freshness story) do not invalidate a model whose weight
vector never depended on them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ColumnSegment:
    """One per-table column span ``[start, stop)`` of the logical matrix ``T``.

    Attributes
    ----------
    name:
        Stable block name: ``"entity"`` for the star-schema entity block,
        ``"table_i"`` / ``"component_i"`` for the i-th attribute/component
        table.
    start, stop:
        Half-open column interval of the block inside ``T``.
    table_index:
        Index into the matrix's ``attributes`` list, or ``None`` for the
        entity block (which has no indicator and no attribute table).
    """

    name: str
    start: int
    stop: int
    table_index: Optional[int]

    @property
    def width(self) -> int:
        """Number of columns in the segment."""
        return self.stop - self.start

    @property
    def is_entity(self) -> bool:
        """Whether this is the star-schema entity block."""
        return self.table_index is None

    def slice(self) -> slice:
        """The segment as a Python slice over the columns of ``T`` (or rows of ``w``)."""
        return slice(self.start, self.stop)


def build_segments(entity_width: Optional[int], attribute_widths: Sequence[int],
                   attribute_prefix: str = "table") -> List[ColumnSegment]:
    """Assemble the ordered segment list from block widths.

    ``entity_width=None`` means "no entity block at all" (the M:N class);
    ``entity_width=0`` keeps a zero-width entity segment so the block
    structure of a ``d_S = 0`` star schema stays visible.
    """
    segments: List[ColumnSegment] = []
    cursor = 0
    if entity_width is not None:
        segments.append(ColumnSegment("entity", 0, entity_width, None))
        cursor = entity_width
    for i, width in enumerate(attribute_widths):
        segments.append(ColumnSegment(f"{attribute_prefix}_{i}", cursor, cursor + width, i))
        cursor += width
    return segments


def segment_widths(segments: Sequence[ColumnSegment]) -> Dict[str, int]:
    """Name -> width mapping of a segment list (the ``n_features_per_table`` view)."""
    return {segment.name: segment.width for segment in segments}


def schema_fingerprint(matrix) -> str:
    """Stable hex digest of a normalized matrix's column-segment structure.

    Covers the matrix kind and the ordered ``(name, width)`` pairs -- exactly
    the information needed to slice a trained weight vector correctly.  Row
    counts, base-matrix contents and storage formats are excluded on purpose
    (see the module docstring).
    """
    segments = matrix.column_segments()
    payload = {
        "kind": type(matrix).__name__,
        "segments": [[segment.name, segment.width] for segment in segments],
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()
