"""The normalized matrix for star-schema PK-FK joins.

:class:`NormalizedMatrix` is the paper's central logical data type
(Sections 3.1, 3.2 and 3.5): a triple ``(S, K, R)`` for a single PK-FK join,
generalized to ``(S, K1..Kq, R1..Rq)`` for star schemas, such that the
(virtual) join output is ``T = [S, K1 R1, ..., Kq Rq]``.

Every linear-algebra operator of Table 1 is overloaded on this class and
executes through the factorized rewrite rules in :mod:`repro.core.rewrite`,
never through the materialized ``T`` -- except for the explicitly
non-factorizable element-wise matrix arithmetic (Section 3.3.7), which
materializes on demand.  Transposition is handled with a flag, exactly as the
paper's implementation does (Section 3.2 and Appendix A), so ``TN.T`` costs
nothing and later operators dispatch on the flag.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import NotSupportedError, RewriteError, ShapeError
from repro.la import kernels
from repro.la.types import (
    MatrixLike,
    ensure_2d,
    is_matrix_like,
    normalize_row_indices,
    to_dense,
)
from repro.core.indicator import validate_pk_fk_indicator
from repro.core.materialize import materialize_star
from repro.core.rewrite import aggregation, crossprod as crossprod_rules
from repro.core.rewrite import inversion, multiplication, scalar_ops

Scalar = Union[int, float, np.floating, np.integer]


def _is_scalar(value: object) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) and not isinstance(value, bool)


class NormalizedMatrix:
    """Logical matrix ``T = [S, K1 R1, ..., Kq Rq]`` stored as its base matrices.

    Parameters
    ----------
    entity:
        The entity-table feature matrix ``S`` of shape ``(n_S, d_S)``, or
        ``None`` when the entity table contributes no features (``d_S = 0``),
        as in several of the paper's real datasets.
    indicators:
        Sparse PK-FK indicator matrices ``K_i`` of shape ``(n_S, n_Ri)``; one
        per attribute table.
    attributes:
        Attribute-table feature matrices ``R_i`` of shape ``(n_Ri, d_Ri)``.
    transposed:
        Whether this object represents ``T`` (``False``) or ``T^T`` (``True``).
    validate:
        Validate indicator structure and shape compatibility (cheap; disable
        only inside internal constructors that already validated).
    crossprod_method:
        ``"efficient"`` (Algorithm 2, default) or ``"naive"`` (Algorithm 1).
    """

    # Make NumPy defer binary operations to this class so that expressions such
    # as ``w.T @ TN`` or ``2.0 * TN`` written in ML scripts hit our overloads.
    __array_ufunc__ = None
    __array_priority__ = 1000

    #: Monotonic delta version: 0 at construction, bumped by :meth:`apply_delta`.
    version = 0

    def __init__(self, entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                 attributes: Sequence[MatrixLike], transposed: bool = False,
                 validate: bool = True, crossprod_method: str = "efficient"):
        if len(indicators) != len(attributes):
            raise ShapeError(
                f"got {len(indicators)} indicator matrices but {len(attributes)} attribute matrices"
            )
        if not indicators and entity is None:
            raise ShapeError("a normalized matrix needs an entity matrix or at least one join")
        if crossprod_method not in ("efficient", "naive"):
            raise ValueError("crossprod_method must be 'efficient' or 'naive'")

        self.entity = ensure_2d(entity) if entity is not None else None
        self.indicators = [validate_pk_fk_indicator(k) if validate else k for k in indicators]
        self.attributes = [ensure_2d(r) for r in attributes]
        self.transposed = bool(transposed)
        self.crossprod_method = crossprod_method

        if validate:
            self._validate_shapes()

    # -- construction / validation -------------------------------------------

    def _validate_shapes(self) -> None:
        n_rows = None
        if self.entity is not None:
            n_rows = self.entity.shape[0]
        for i, (indicator, attribute) in enumerate(zip(self.indicators, self.attributes)):
            if n_rows is None:
                n_rows = indicator.shape[0]
            if indicator.shape[0] != n_rows:
                raise ShapeError(
                    f"indicator {i} has {indicator.shape[0]} rows, expected {n_rows}"
                )
            if indicator.shape[1] != attribute.shape[0]:
                raise ShapeError(
                    f"indicator {i} has {indicator.shape[1]} columns but attribute matrix "
                    f"{i} has {attribute.shape[0]} rows"
                )

    def _with_components(self, entity: Optional[MatrixLike], attributes: Sequence[MatrixLike],
                         transposed: Optional[bool] = None) -> "NormalizedMatrix":
        """Build a sibling normalized matrix sharing this one's indicators."""
        return NormalizedMatrix(
            entity,
            self.indicators,
            list(attributes),
            transposed=self.transposed if transposed is None else transposed,
            validate=False,
            crossprod_method=self.crossprod_method,
        )

    # -- shape and metadata ----------------------------------------------------

    @property
    def num_joins(self) -> int:
        """Number of attribute tables (``q`` in the paper)."""
        return len(self.attributes)

    @property
    def entity_width(self) -> int:
        """Number of entity-table features ``d_S``."""
        return self.entity.shape[1] if self.entity is not None else 0

    @property
    def attribute_widths(self) -> List[int]:
        """Feature counts ``d_{R_1} .. d_{R_q}`` of the attribute tables."""
        return [r.shape[1] for r in self.attributes]

    def column_segments(self) -> List["ColumnSegment"]:
        """Ordered per-table column spans of the logical ``T``.

        Returns one :class:`~repro.core.segments.ColumnSegment` for the
        entity block (named ``"entity"``; present whenever the matrix has an
        entity matrix, even with ``d_S = 0``) followed by one ``"table_i"``
        segment per attribute table.  The segments partition
        ``[0, logical_cols)`` and are what the serving subsystem uses to
        slice a trained weight vector into per-table pieces.
        """
        from repro.core.segments import build_segments

        entity_width = self.entity_width if self.entity is not None else None
        return build_segments(entity_width, self.attribute_widths, "table")

    @property
    def n_features_per_table(self) -> dict:
        """Name -> feature-count mapping of :meth:`column_segments`."""
        from repro.core.segments import segment_widths

        return segment_widths(self.column_segments())

    @property
    def logical_rows(self) -> int:
        """Number of rows of the untransposed ``T`` (``n_S``)."""
        if self.indicators:
            return self.indicators[0].shape[0]
        return self.entity.shape[0]

    @property
    def logical_cols(self) -> int:
        """Number of columns of the untransposed ``T`` (``d = d_S + sum d_Ri``)."""
        return self.entity_width + sum(self.attribute_widths)

    @property
    def shape(self) -> tuple:
        if self.transposed:
            return (self.logical_cols, self.logical_rows)
        return (self.logical_rows, self.logical_cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "NormalizedMatrix":
        """Logical transpose: flips the flag, shares all components."""
        return NormalizedMatrix(
            self.entity, self.indicators, self.attributes,
            transposed=not self.transposed, validate=False,
            crossprod_method=self.crossprod_method,
        )

    def transpose(self) -> "NormalizedMatrix":
        return self.T

    @property
    def tuple_ratio(self) -> float:
        """Average tuple ratio ``n_S / n_R`` across the joins (Section 3.4).

        A degenerate attribute table with zero rows contributes an infinite
        ratio rather than a ``ZeroDivisionError`` (mirroring
        :class:`repro.core.cost.Dimensions`), so the decision rule and the
        planner stay well-defined on empty inputs.
        """
        if not self.attributes:
            return 1.0
        ratios = [self.logical_rows / r.shape[0] if r.shape[0] else float("inf")
                  for r in self.attributes]
        return float(np.mean(ratios))

    @property
    def feature_ratio(self) -> float:
        """Feature ratio ``sum d_Ri / d_S`` (infinite when ``d_S = 0``)."""
        total_attr = sum(self.attribute_widths)
        if self.entity_width == 0:
            return float("inf") if total_attr else 0.0
        return total_attr / self.entity_width

    def redundancy_ratio(self) -> float:
        """Size of the materialized ``T`` divided by the total base-table size."""
        materialized = self.logical_rows * self.logical_cols
        base = self.logical_rows * self.entity_width + sum(
            r.shape[0] * r.shape[1] for r in self.attributes
        )
        return materialized / base if base else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NormalizedMatrix(shape={self.shape}, joins={self.num_joins}, "
            f"dS={self.entity_width}, dR={self.attribute_widths}, transposed={self.transposed})"
        )

    # -- row selection -----------------------------------------------------------

    def take_rows(self, row_indices) -> "NormalizedMatrix":
        """Return a normalized matrix restricted to the given entity rows.

        Selecting rows of ``T`` only touches the entity matrix and the rows of
        each indicator matrix -- the attribute tables are shared unchanged --
        so train/test splits and mini-batch selection stay factorized.  Only
        valid on an untransposed normalized matrix (row selection on ``T^T``
        would be column selection on ``T``).
        """
        if self.transposed:
            raise NotSupportedError("take_rows is only defined for untransposed matrices")
        indices = normalize_row_indices(row_indices, self.logical_rows)
        new_entity = self.entity[indices, :] if self.entity is not None else None
        new_indicators = [kernels.take_indicator_rows(k, indices)
                          for k in self.indicators]
        return NormalizedMatrix(
            new_entity, new_indicators, self.attributes, transposed=False,
            validate=False, crossprod_method=self.crossprod_method,
        )

    # -- incremental maintenance ----------------------------------------------

    def apply_delta(self, table_index: int, delta,
                    policy=None) -> "NormalizedMatrix":
        """Successor matrix with *delta* applied to attribute table *table_index*.

        Base matrices are immutable, so a row delta produces a **new**
        normalized matrix sharing every unchanged component; the predecessor
        stays valid for in-flight readers.  The attached lazy
        :class:`~repro.core.lazy.cache.FactorizedCache` (if any) migrates to
        the successor, with each memoized join-invariant term either patched
        in place via the rank-``|Δ|`` rules of
        :mod:`repro.core.rewrite.delta` or invalidated, as the *policy* (a
        :class:`~repro.core.planner.delta_policy.DeltaPolicy`) decides.  The
        successor's :attr:`version` is the predecessor's plus one.

        Deltas that append rows are rejected (:class:`~repro.exceptions.DeltaError`)
        -- row growth changes indicator shapes and needs a rebuild.
        """
        from repro.core.delta import migrate_lazy_state

        if not 0 <= table_index < self.num_joins:
            raise IndexError(
                f"table_index {table_index} out of range for {self.num_joins} joins"
            )
        attributes = list(self.attributes)
        attributes[table_index] = delta.apply_to(attributes[table_index])
        successor = self._with_components(self.entity, attributes)
        return migrate_lazy_state(self, successor, table_index, delta, policy)

    # -- streaming mini-batch execution -------------------------------------------

    def batches(self, target=None, batch_size: Optional[int] = None,
                shuffle: bool = False, seed: Optional[int] = 0,
                memory_budget: Optional[float] = None) -> "NormalizedBatchIterator":
        """Iterate this matrix (and an aligned *target*) as factorized row batches.

        Each batch is a ``take_rows`` slice -- entity and indicators sliced,
        attribute tables shared -- so mini-batch training never materializes
        the join.  See :class:`~repro.core.stream.NormalizedBatchIterator`
        for the ``batch_size`` / ``shuffle`` / ``memory_budget`` knobs.
        """
        from repro.core.stream import NormalizedBatchIterator

        return NormalizedBatchIterator(self, target=target, batch_size=batch_size,
                                       shuffle=shuffle, seed=seed,
                                       memory_budget=memory_budget)

    def stream(self, batch_rows: Optional[int] = None,
               memory_budget: Optional[float] = None) -> "StreamedMatrix":
        """Out-of-core streamed view: Table-1 operators run one row batch at a time.

        Returns a :class:`~repro.core.stream.StreamedMatrix` whose operators
        never hold more than one batch's intermediates resident; pass
        *memory_budget* (bytes) to derive the batch size from the planner's
        memory model.
        """
        from repro.core.stream import StreamedMatrix

        return StreamedMatrix(self, batch_rows=batch_rows, memory_budget=memory_budget)

    # -- sharded parallel execution ----------------------------------------------

    def shard(self, n_shards: int, pool=None) -> "ShardedNormalizedMatrix":
        """Row-shard this matrix for parallel factorized execution.

        Returns a :class:`~repro.core.shard.ShardedNormalizedMatrix` whose
        pieces slice the entity and indicator matrices (the attribute
        matrices are shared by reference) and whose Table-1 operators fan out
        over *pool* -- ``"serial"``, ``"thread"`` (default), ``"process"``, a
        worker count, a :class:`~repro.la.parallel.WorkerPool`, or any
        ``concurrent.futures`` executor.  The shard count is clamped to the
        row count; ``n_shards=1`` executes bit-for-bit like this matrix.
        """
        from repro.core.shard import ShardedNormalizedMatrix

        return ShardedNormalizedMatrix.from_normalized(self, n_shards, pool=pool)

    # -- lazy evaluation ---------------------------------------------------------

    def lazy(self, cache=None) -> "LazyExpr":
        """Return a lazy expression leaf over this matrix (deferred evaluation).

        Operators applied to the result build a :class:`~repro.core.lazy.expr.LazyExpr`
        graph instead of executing immediately; ``.evaluate()`` runs the graph
        through the same factorized rewrites as the eager path, memoizing
        join-invariant subexpressions in a per-matrix
        :class:`~repro.core.lazy.cache.FactorizedCache` so iterative
        workloads compute them only once.  Repeated ``lazy()`` calls on the
        same object share one cache; pass *cache* to share across matrices.
        The base matrices are treated as immutable, as everywhere else.

        The cache lives as long as this matrix and may hold data-sized
        entries (e.g. the scaled copy ``2 T`` that a lazy K-Means fit
        memoizes) -- a deliberate space-time tradeoff that lets later fits
        start warm.  Call ``TN.lazy().cache.clear()`` to release the entries
        while keeping the counters.
        """
        from repro.core.lazy import lazy_view

        return lazy_view(self, cache=cache)

    # -- cost-based planning -----------------------------------------------------

    def plan(self, workload=None, planner=None):
        """Score candidate execution strategies for this matrix (cost-based).

        Returns a :class:`~repro.core.planner.plan.Plan` ranking materialized
        vs. factorized layout, eager vs. lazy engine, and serial vs. sharded
        (vs. chunked) backends for *workload* -- a
        :class:`~repro.core.planner.workload.WorkloadDescriptor`, defaulting
        to a generic single pass over the Table-1 operator mix.  Pass a
        configured :class:`~repro.core.planner.planner.Planner` to control
        calibration or the candidate space; the default planner also scores
        the chunked out-of-core backend for completeness.
        """
        from repro.core.planner import Planner

        planner = planner or Planner(include_chunked=True)
        return planner.plan(self, workload)

    # -- materialization ---------------------------------------------------------

    def materialize(self) -> MatrixLike:
        """Materialize the denormalized matrix this object represents."""
        matrix = materialize_star(self.entity, self.indicators, self.attributes)
        return matrix.T if self.transposed else matrix

    def to_dense(self) -> np.ndarray:
        return to_dense(self.materialize())

    # -- element-wise scalar operators (Section 3.3.1) ---------------------------

    def _scalar_result(self, op: str, scalar: Scalar, reverse: bool) -> "NormalizedMatrix":
        entity, attributes = scalar_ops.scalar_op_star(
            self.entity, self.attributes, op, float(scalar), reverse=reverse
        )
        return self._with_components(entity, attributes)

    def __mul__(self, other):
        if _is_scalar(other):
            return self._scalar_result("*", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "*", reverse=False)
        return NotImplemented

    def __rmul__(self, other):
        if _is_scalar(other):
            return self._scalar_result("*", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "*", reverse=True)
        return NotImplemented

    def __add__(self, other):
        if _is_scalar(other):
            return self._scalar_result("+", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "+", reverse=False)
        return NotImplemented

    def __radd__(self, other):
        if _is_scalar(other):
            return self._scalar_result("+", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "+", reverse=True)
        return NotImplemented

    def __sub__(self, other):
        if _is_scalar(other):
            return self._scalar_result("-", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "-", reverse=False)
        return NotImplemented

    def __rsub__(self, other):
        if _is_scalar(other):
            return self._scalar_result("-", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "-", reverse=True)
        return NotImplemented

    def __truediv__(self, other):
        if _is_scalar(other):
            return self._scalar_result("/", other, reverse=False)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "/", reverse=False)
        return NotImplemented

    def __rtruediv__(self, other):
        if _is_scalar(other):
            return self._scalar_result("/", other, reverse=True)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, "/", reverse=True)
        return NotImplemented

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self._scalar_result("**", exponent, reverse=False)
        return NotImplemented

    def __neg__(self):
        return self._scalar_result("*", -1.0, reverse=False)

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "NormalizedMatrix":
        """Apply an element-wise scalar function ``f(T)`` (e.g. ``np.exp``)."""
        entity, attributes = scalar_ops.function_star(self.entity, self.attributes, fn)
        return self._with_components(entity, attributes)

    def exp(self) -> "NormalizedMatrix":
        """Element-wise exponential (lets ``np.exp``-style scripts stay generic)."""
        return self.apply(np.exp)

    def log(self) -> "NormalizedMatrix":
        """Element-wise natural logarithm."""
        return self.apply(np.log)

    def sqrt(self) -> "NormalizedMatrix":
        """Element-wise square root."""
        return self.apply(np.sqrt)

    def _elementwise_matrix_op(self, other: MatrixLike, op: str, reverse: bool) -> MatrixLike:
        """Non-factorizable element-wise matrix arithmetic (Section 3.3.7).

        The join introduces no exploitable redundancy into ``T (op) X`` for an
        arbitrary regular ``X``, so the paper treats these as non-factorizable;
        we materialize and delegate to the plain operator, returning a regular
        matrix.
        """
        materialized = to_dense(self.materialize())
        other_dense = to_dense(ensure_2d(other))
        if materialized.shape != other_dense.shape:
            raise ShapeError(
                f"element-wise op: shape mismatch {materialized.shape} vs {other_dense.shape}"
            )
        ops = {
            "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
        }
        fn = ops[op]
        if reverse:
            return fn(other_dense, materialized)
        return fn(materialized, other_dense)

    # -- aggregation operators (Section 3.3.2) -----------------------------------

    def rowsums(self) -> np.ndarray:
        """``rowSums(T)`` -- a column vector; honours the transpose flag."""
        if self.transposed:
            return aggregation.colsums_star(self.entity, self.indicators, self.attributes).T
        return aggregation.rowsums_star(self.entity, self.indicators, self.attributes)

    def colsums(self) -> np.ndarray:
        """``colSums(T)`` -- a row vector; honours the transpose flag."""
        if self.transposed:
            return aggregation.rowsums_star(self.entity, self.indicators, self.attributes).T
        return aggregation.colsums_star(self.entity, self.indicators, self.attributes)

    def total_sum(self) -> float:
        """``sum(T)`` -- the grand total of all elements."""
        return aggregation.sum_star(self.entity, self.indicators, self.attributes)

    def sum(self, axis: Optional[int] = None):
        """NumPy-flavoured alias: ``axis=None`` grand total, ``0`` colsums, ``1`` rowsums."""
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- multiplication operators (Sections 3.3.3, 3.3.4, Appendix C) ------------

    def __matmul__(self, other):
        if isinstance(other, NormalizedMatrix):
            return self._double_multiply(other)
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            # T^T X -> (X^T T)^T  (Appendix A), which is a factorized RMM.
            result = multiplication.rmm_star(
                self.entity, self.indicators, self.attributes, to_dense(other).T
            )
            return result.T
        return multiplication.lmm_star(self.entity, self.indicators, self.attributes, other)

    def __rmatmul__(self, other):
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            # X T^T -> (T X^T)^T  (Appendix A), which is a factorized LMM.
            result = multiplication.lmm_star(
                self.entity, self.indicators, self.attributes, to_dense(other).T
            )
            return result.T
        return multiplication.rmm_star(self.entity, self.indicators, self.attributes, other)

    def dot(self, other) -> MatrixLike:
        """Alias for ``self @ other`` to keep NumPy-style scripts working."""
        return self.__matmul__(other)

    def _double_multiply(self, other: "NormalizedMatrix") -> np.ndarray:
        """Double matrix multiplication ``A @ B`` with both operands normalized."""
        if self.num_joins != 1 or other.num_joins != 1 or \
                self.entity is None or other.entity is None:
            # Appendix C covers the single-join case; fall back to materializing
            # the (smaller) right operand otherwise.
            return self.__matmul__(other.materialize())
        if not self.transposed and not other.transposed:
            return multiplication.dmm_single(
                self.entity, self.indicators[0], self.attributes[0],
                other.entity, other.indicators[0], other.attributes[0],
            )
        if self.transposed and other.transposed:
            # A^T B^T = (B A)^T
            return other._double_multiply_untransposed(self).T
        if self.transposed and not other.transposed:
            return multiplication.dmm_gram_pair(
                self.entity, self.indicators[0], self.attributes[0],
                other.entity, other.indicators[0], other.attributes[0],
            )
        # not self.transposed and other.transposed
        return multiplication.dmm_outer_pair(
            self.entity, self.indicators[0], self.attributes[0],
            other.entity, other.indicators[0], other.attributes[0],
        )

    def _double_multiply_untransposed(self, other: "NormalizedMatrix") -> np.ndarray:
        """Helper computing ``self @ other`` ignoring both transpose flags."""
        plain_self = NormalizedMatrix(self.entity, self.indicators, self.attributes,
                                      transposed=False, validate=False)
        plain_other = NormalizedMatrix(other.entity, other.indicators, other.attributes,
                                       transposed=False, validate=False)
        return plain_self._double_multiply(plain_other)

    # -- cross-product and inversion (Sections 3.3.5, 3.3.6) ----------------------

    def crossprod(self, method: Optional[str] = None) -> np.ndarray:
        """``crossprod(T) = T^T T`` (or ``T T^T`` when the transpose flag is set)."""
        method = method or self.crossprod_method
        if self.transposed:
            return crossprod_rules.gram_transposed_star(
                self.entity, self.indicators, self.attributes
            )
        if method == "naive":
            return crossprod_rules.crossprod_star_naive(
                self.entity, self.indicators, self.attributes
            )
        return crossprod_rules.crossprod_star_efficient(
            self.entity, self.indicators, self.attributes
        )

    def gram(self) -> np.ndarray:
        """Alias for :meth:`crossprod`."""
        return self.crossprod()

    def ginv(self) -> np.ndarray:
        """Moore-Penrose pseudo-inverse of the (virtual) matrix (Section 3.3.6)."""
        plain = inversion.ginv_star(
            self.entity, self.indicators, self.attributes,
            materialize_fn=lambda: materialize_star(self.entity, self.indicators, self.attributes),
        )
        # ginv(T^T) == ginv(T)^T, so the transposed case reuses the same rewrite.
        return plain.T if self.transposed else plain

    def solve(self, rhs: MatrixLike, ridge: float = 0.0) -> np.ndarray:
        """Least-squares solve ``min_w ||T w - rhs||`` via the factorized normal equations.

        The paper notes (Section 3.3.6) that the rewrite rules for ``solve``
        mirror those for ``ginv``: the Gram matrix comes from the factorized
        cross-product and the right-hand side from a factorized transposed
        LMM, so nothing is ever materialized.  An optional ridge term
        regularizes ill-conditioned systems.
        """
        from repro.la.ops import solve_regularized

        rhs = ensure_2d(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise ShapeError(
                f"solve: right-hand side has {rhs.shape[0]} rows but the matrix has {self.shape[0]}"
            )
        gram = self.crossprod()
        projected = self.T @ rhs
        return solve_regularized(gram, projected, ridge=ridge)

    # -- equality helpers used by tests -------------------------------------------

    def equals_materialized(self, other: MatrixLike, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Check that this normalized matrix materializes to *other* numerically."""
        mine = to_dense(self.materialize())
        theirs = to_dense(ensure_2d(other))
        if mine.shape != theirs.shape:
            return False
        return bool(np.allclose(mine, theirs, rtol=rtol, atol=atol))
