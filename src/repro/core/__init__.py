"""Morpheus core: the normalized matrix and the factorized rewrite rules.

This package implements the paper's primary contribution:

* :class:`repro.core.normalized_matrix.NormalizedMatrix` -- the logical data
  type for star-schema PK-FK joins (``T = [S, K1 R1, ..., Kq Rq]``), with every
  LA operator of Table 1 overloaded to execute via the factorized rewrite
  rules of Section 3.3/3.5 and the transpose rules of Appendix A.
* :class:`repro.core.mn_matrix.MNNormalizedMatrix` -- the extension to general
  M:N equi-joins and multi-table M:N joins (Section 3.6, Appendices D and E).
* :mod:`repro.core.rewrite` -- the rewrite rules themselves, written as plain
  functions over the base matrices so they can be tested, benchmarked and
  ablated (naive vs. efficient cross-product, LMM multiplication order)
  independently of the wrapper classes.
* :mod:`repro.core.cost` -- the arithmetic-operation cost models of Table 3 /
  Table 11.
* :mod:`repro.core.decision` -- the heuristic decision rule of Section 3.7 /
  5.1 (one pluggable strategy beside the cost-based one) and the
  :func:`morpheus` factory that applies it.
* :mod:`repro.core.planner` -- the cost-based adaptive execution planner
  behind ``engine="auto"`` and ``NormalizedMatrix.plan()``: machine
  calibration + workload descriptors + Table-3 arithmetic, scored into
  explainable :class:`~repro.core.planner.plan.Plan` objects.
* :mod:`repro.core.lazy` -- deferred-evaluation expression graphs over
  normalized matrices with cross-iteration memoization of join-invariant
  subexpressions (``NormalizedMatrix.lazy()``, :class:`FactorizedCache`).
* :mod:`repro.core.shard` -- row-sharded parallel execution
  (``NormalizedMatrix.shard()``, :class:`ShardedMatrix`,
  :class:`ShardedNormalizedMatrix`) fanning the Table-1 operators out over
  the worker pools of :mod:`repro.la.parallel`.
"""

from repro.core.indicator import (
    validate_pk_fk_indicator,
    validate_mn_indicator,
    indicator_codes,
    indicator_stats,
)
from repro.core.segments import ColumnSegment, schema_fingerprint
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.materialize import materialize
from repro.core.cost import (
    OperatorCost,
    standard_cost,
    factorized_cost,
    asymptotic_speedup,
    CostModel,
)
from repro.core.decision import (
    CostBasedStrategy,
    DecisionRule,
    ExecutionStrategy,
    ThresholdStrategy,
    get_strategy,
    morpheus,
    should_factorize,
)
from repro.core.lazy import FactorizedCache, LazyExpr, as_lazy, constant, evaluate
from repro.core.planner import (
    CalibrationProfile,
    Plan,
    Planner,
    WorkloadDescriptor,
)
from repro.core.shard import ShardedMatrix, ShardedNormalizedMatrix, shard_bounds
from repro.core.stream import Batch, NormalizedBatchIterator, StreamedMatrix

__all__ = [
    "CalibrationProfile",
    "CostBasedStrategy",
    "ExecutionStrategy",
    "Plan",
    "Planner",
    "ThresholdStrategy",
    "WorkloadDescriptor",
    "get_strategy",
    "ShardedMatrix",
    "ShardedNormalizedMatrix",
    "shard_bounds",
    "Batch",
    "NormalizedBatchIterator",
    "StreamedMatrix",
    "FactorizedCache",
    "LazyExpr",
    "as_lazy",
    "constant",
    "evaluate",
    "NormalizedMatrix",
    "MNNormalizedMatrix",
    "materialize",
    "validate_pk_fk_indicator",
    "validate_mn_indicator",
    "indicator_codes",
    "indicator_stats",
    "ColumnSegment",
    "schema_fingerprint",
    "OperatorCost",
    "standard_cost",
    "factorized_cost",
    "asymptotic_speedup",
    "CostModel",
    "DecisionRule",
    "should_factorize",
    "morpheus",
]
