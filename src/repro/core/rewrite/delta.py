"""Algebraic delta rules: rank-|Δ| patches for the Table-1 operators.

Incremental view maintenance for the factorized algebra.  Every Table-1
result over a normalized matrix is a *sum of per-table contributions*
(Sections 3.3 and 3.5 of the paper), so a row-level change to one attribute
table ``R_k`` perturbs the result by a term that involves only the changed
rows -- never the full table and never the join output.  Writing
``Δ = R_k' - R_k`` for the ``(b, d_k)`` matrix of row changes on row set
``ρ`` (``|ρ| = b``), the rules are::

    Δ(T X)          = K_k[:, ρ] (Δ X_k)                  -- LMM block push-down
    Δ(T^T Y)[seg_k] = Δ^T (K_k[:, ρ]^T Y)                -- transposed LMM
    Δ rowSums(T)    = K_k[:, ρ] rowSums(Δ)
    Δ colSums(T)[seg_k] = colSums(K_k[:, ρ]) Δ
    Δ sum(T)        = sum(colSums(K_k[:, ρ]) Δ)
    Δ crossprod(T)  = block-sparse, touching only row/column segment k:
        diagonal:    crossprod(D_ρ^{1/2} R_k') - crossprod(D_ρ^{1/2} R_k)
        vs entity:   (S^T K_k[:, ρ]) Δ
        vs table j:  Δ^T (K_k[:, ρ]^T K_j) R_j

where ``D_ρ = diag(colSums(K_k[:, ρ]))`` counts the foreign keys referencing
each changed row.  Each patch costs ``O(nnz(K_k[:, ρ]) + b · d · m)`` --
proportional to the *delta*, not to ``|R_k|`` or ``n_S`` -- which is what
makes update-to-visibility latency sublinear in table size.

Like every rewrite module, the rules are expressed exclusively through the
:mod:`repro.la.ops` primitives, so they participate in the closure property
and in the golden structural traces of :mod:`repro.core.rewrite.trace`.
The M:N rules are the same formulas without the entity block.
"""

from __future__ import annotations

import functools
import time
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.exceptions import ShapeError
from repro.la.ops import colsums, crossprod, diag_scale_rows, matmul, rowsums, transpose
from repro.la.types import MatrixLike, ensure_2d, to_dense

_RULE_SECONDS = obs.REGISTRY.histogram(
    "repro_delta_rule_seconds",
    "Latency of individual rank-|delta| patch rules",
    labels=("rule",),
)
_RULES_TOTAL = obs.REGISTRY.counter(
    "repro_delta_rules_total",
    "Patch-rule applications by rule name",
    labels=("rule",),
)


def _timed_rule(fn):
    """Time a patch rule when observability is on (pure wrapper: the rule's
    ``la.ops`` primitive-call structure -- and hence the golden traces -- is
    untouched)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not obs.enabled():
            return fn(*args, **kwargs)
        started = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            _RULE_SECONDS.labels(rule=fn.__name__).observe(
                time.perf_counter() - started)
            _RULES_TOTAL.labels(rule=fn.__name__).inc()

    return wrapper


def select_columns(indicator: MatrixLike, rows: np.ndarray) -> MatrixLike:
    """The ``n_S x b`` indicator slice ``K[:, ρ]`` routing only changed rows.

    Column selection is not a Table-1 primitive (it is plain indexing, the
    same way the LMM rewrite slices ``X`` row-wise), so the slice appears as
    an anonymous operand in the golden traces.
    """
    rows = np.asarray(rows, dtype=np.int64)
    return indicator[:, rows]


def _check_delta(rows: np.ndarray, values: np.ndarray, what: str) -> None:
    if values.ndim != 2:
        raise ShapeError(f"{what}: delta values must be 2-D, got ndim={values.ndim}")
    if rows.ndim != 1 or rows.shape[0] != values.shape[0]:
        raise ShapeError(
            f"{what}: got {rows.shape[0] if rows.ndim == 1 else rows.shape} row indices "
            f"for {values.shape[0]} delta rows"
        )


# ---------------------------------------------------------------------------
# Linear patches (LMM / transposed LMM / aggregations)
# ---------------------------------------------------------------------------

@_timed_rule
def delta_lmm(indicator: MatrixLike, rows: np.ndarray, dvalues: np.ndarray,
              x_block: MatrixLike) -> np.ndarray:
    """Patch term for ``T @ X``: ``K_k[:, ρ] (Δ X_k)``, shape ``(n_S, m)``.

    *x_block* is the row block of ``X`` belonging to table ``k`` (the same
    split the LMM rewrite uses); the small product ``Δ X_k`` goes first,
    exactly like the crucial ``K (R X)`` ordering of the full rule.
    """
    dvalues = ensure_2d(dvalues)
    rows = np.asarray(rows, dtype=np.int64)
    _check_delta(rows, dvalues, "delta LMM")
    selected = select_columns(indicator, rows)
    return to_dense(matmul(selected, matmul(dvalues, x_block)))


@_timed_rule
def delta_tlmm_block(indicator: MatrixLike, rows: np.ndarray, dvalues: np.ndarray,
                     y: MatrixLike) -> np.ndarray:
    """Patch for rows ``seg_k`` of ``T^T Y``: ``Δ^T (K_k[:, ρ]^T Y)``, ``(d_k, m)``.

    Only the ``d_k`` result rows belonging to the changed table move; the
    caller adds this block in place.  ``K_k[:, ρ]^T Y`` gathers the target
    rows whose foreign key points at a changed attribute row -- ``O(nnz)``
    in the delta's fan-in, not in ``n_S``.
    """
    dvalues = ensure_2d(dvalues)
    rows = np.asarray(rows, dtype=np.int64)
    _check_delta(rows, dvalues, "delta transposed LMM")
    selected = select_columns(indicator, rows)
    return to_dense(matmul(transpose(dvalues), matmul(transpose(selected), y)))


@_timed_rule
def delta_rowsums(indicator: MatrixLike, rows: np.ndarray,
                  dvalues: np.ndarray) -> np.ndarray:
    """Patch term for ``rowSums(T)``: ``K_k[:, ρ] rowSums(Δ)``, ``(n_S, 1)``."""
    dvalues = ensure_2d(dvalues)
    rows = np.asarray(rows, dtype=np.int64)
    _check_delta(rows, dvalues, "delta rowsums")
    selected = select_columns(indicator, rows)
    return to_dense(matmul(selected, rowsums(dvalues)))


@_timed_rule
def delta_colsums_block(indicator: MatrixLike, rows: np.ndarray,
                        dvalues: np.ndarray) -> np.ndarray:
    """Patch for columns ``seg_k`` of ``colSums(T)``: ``colSums(K_k[:, ρ]) Δ``."""
    dvalues = ensure_2d(dvalues)
    rows = np.asarray(rows, dtype=np.int64)
    _check_delta(rows, dvalues, "delta colsums")
    counts = colsums(select_columns(indicator, rows))
    return to_dense(matmul(counts, dvalues))


@_timed_rule
def delta_total_sum(indicator: MatrixLike, rows: np.ndarray,
                    dvalues: np.ndarray) -> float:
    """Patch term for ``sum(T)``: the grand total of the colsums patch."""
    return float(delta_colsums_block(indicator, rows, dvalues).sum())


# ---------------------------------------------------------------------------
# Cross-product patch (the Gram matrix)
# ---------------------------------------------------------------------------

@_timed_rule
def patch_crossprod(gram: np.ndarray, entity: Optional[MatrixLike],
                    indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
                    table_index: int, rows: np.ndarray, old: np.ndarray,
                    new: np.ndarray) -> np.ndarray:
    """Return ``crossprod(T')`` patched from the pre-delta ``crossprod(T)``.

    *attributes* are the **post-delta** attribute matrices (only
    ``attributes[table_index]`` differs from the state *gram* was computed
    on); *old* / *new* are the ``(b, d_k)`` changed-row values.  Only the
    blocks in row/column segment ``k`` are touched -- a rank-``2b`` update
    of the ``d x d`` Gram matrix.  Works for both the star schema
    (``entity`` is ``S`` or ``None``) and the M:N form (``entity=None``).
    """
    old = ensure_2d(np.asarray(old, dtype=np.float64))
    new = ensure_2d(np.asarray(new, dtype=np.float64))
    rows = np.asarray(rows, dtype=np.int64)
    _check_delta(rows, new, "crossprod patch")
    if old.shape != new.shape:
        raise ShapeError(f"crossprod patch: old {old.shape} vs new {new.shape}")
    entity_width = entity.shape[1] if entity is not None else 0
    widths = [r.shape[1] for r in attributes]
    offsets = _offsets(entity_width, widths)
    k = table_index
    ok, wk = offsets[k], widths[k]
    if new.shape[1] != wk:
        raise ShapeError(
            f"crossprod patch: delta has {new.shape[1]} columns but table {k} has {wk}"
        )
    out = np.array(to_dense(gram), dtype=np.float64)  # writable successor copy
    dvalues = new - old
    selected = select_columns(indicators[k], rows)

    # Diagonal block: crossprod(D^1/2 R') - crossprod(D^1/2 R) over changed rows.
    counts = np.sqrt(np.asarray(colsums(selected)).ravel())
    out[ok:ok + wk, ok:ok + wk] += (
        to_dense(crossprod(diag_scale_rows(counts, new)))
        - to_dense(crossprod(diag_scale_rows(counts, old)))
    )

    # Entity block: (S^T K_k[:, ρ]) Δ and its transpose.
    if entity_width:
        block = to_dense(matmul(matmul(transpose(entity), selected), dvalues))
        out[:entity_width, ok:ok + wk] += block
        out[ok:ok + wk, :entity_width] += block.T

    # Cross blocks vs every other table: Δ^T (K_k[:, ρ]^T K_j) R_j.
    for j, (indicator_j, attribute_j) in enumerate(zip(indicators, attributes)):
        if j == k:
            continue
        crossing = matmul(transpose(selected), indicator_j)
        block = to_dense(matmul(transpose(dvalues), matmul(crossing, attribute_j)))
        oj, wj = offsets[j], widths[j]
        out[ok:ok + wk, oj:oj + wj] += block
        out[oj:oj + wj, ok:ok + wk] += block.T
    return out


def _offsets(entity_width: int, widths: Sequence[int]) -> List[int]:
    offsets = []
    start = entity_width
    for width in widths:
        offsets.append(start)
        start += width
    return offsets
