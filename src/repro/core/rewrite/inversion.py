"""Rewrite rules for the matrix-inversion operators (pseudo-inverse and solve).

Paper reference: Section 3.3.6 and Appendix A/B.  The join output ``T`` is
rarely square and, even when it is, Theorem B.1 shows that invertibility
forces ``TR <= 1/FR + 1`` -- i.e. almost no redundancy -- so the paper targets
the Moore-Penrose pseudo-inverse ``ginv`` instead::

    ginv(T) -> ginv(crossprod(T)) T^T        when d <  n   (tall matrix)
    ginv(T) -> T^T ginv(crossprod(T^T))      otherwise     (wide matrix)

Both right-hand sides only need the factorized cross-product plus a
(transposed) LMM/RMM, so they stay within the rewrite framework.  The
identities hold exactly only when the corresponding Gram matrix is
non-singular (full column/row rank); for rank-deficient inputs the library
falls back to materializing ``T``, which preserves correctness at the expense
of the speed-up.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.la.ops import ginv as dense_ginv
from repro.la.ops import matmul, transpose
from repro.la.types import MatrixLike, to_dense

from repro.core.rewrite.crossprod import (
    crossprod_mn_efficient,
    crossprod_star_efficient,
    gram_transposed_mn,
    gram_transposed_star,
)
from repro.core.rewrite.multiplication import lmm_mn, lmm_star, rmm_mn, rmm_star


def _is_full_rank(gram: np.ndarray, rcond: float = 1e-10) -> bool:
    """Cheap full-rank check on a (small) Gram matrix via its eigenvalue range."""
    if gram.size == 0:
        return False
    eigenvalues = np.linalg.eigvalsh((gram + gram.T) / 2.0)
    largest = float(eigenvalues[-1])
    if largest <= 0:
        return False
    return float(eigenvalues[0]) > rcond * largest


def ginv_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
              attributes: Sequence[MatrixLike],
              materialize_fn: Callable[[], MatrixLike]) -> np.ndarray:
    """Factorized pseudo-inverse of a star-schema normalized matrix.

    *materialize_fn* is a zero-argument callable producing the materialized
    ``T``; it is only invoked in the rank-deficient fallback path.
    """
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    entity_width = entity.shape[1] if entity is not None else 0
    total_width = entity_width + sum(r.shape[1] for r in attributes)

    if total_width < n_rows:
        gram = crossprod_star_efficient(entity, indicators, attributes)
        if _is_full_rank(gram):
            # ginv(T) = ginv(T^T T) T^T = (T ginv(T^T T)^T)^T via factorized LMM.
            inv_gram = dense_ginv(gram)
            return lmm_star(entity, indicators, attributes, inv_gram.T).T
    else:
        gramian = gram_transposed_star(entity, indicators, attributes)
        if _is_full_rank(gramian):
            # ginv(T) = T^T ginv(T T^T) = (ginv(T T^T)^T T)^T via factorized RMM.
            inv_gramian = dense_ginv(gramian)
            return rmm_star(entity, indicators, attributes, inv_gramian.T).T
    return dense_ginv(to_dense(materialize_fn()))


def ginv_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
            materialize_fn: Callable[[], MatrixLike]) -> np.ndarray:
    """Factorized pseudo-inverse of an M:N normalized matrix."""
    n_rows = indicators[0].shape[0]
    total_width = sum(r.shape[1] for r in attributes)
    if total_width < n_rows:
        gram = crossprod_mn_efficient(indicators, attributes)
        if _is_full_rank(gram):
            inv_gram = dense_ginv(gram)
            return lmm_mn(indicators, attributes, inv_gram.T).T
    else:
        gramian = gram_transposed_mn(indicators, attributes)
        if _is_full_rank(gramian):
            inv_gramian = dense_ginv(gramian)
            return rmm_mn(indicators, attributes, inv_gramian.T).T
    return dense_ginv(to_dense(materialize_fn()))
