"""Rewrite rules for matrix multiplication: LMM, RMM and DMM.

Paper reference: Sections 3.3.3 (LMM), 3.3.4 (RMM), 3.5 (star schema),
Appendix A (transposed inputs), Appendix C (double matrix multiplication) and
Appendices D/E (M:N joins).

Left multiplication ``T X`` (``X`` is ``d x m``) splits ``X`` row-wise by the
column blocks of ``T`` and pushes each block product to the base matrix before
re-assembling through the indicators::

    T X -> S X[1:dS, ] + sum_i Ki (Ri X[d'_{i-1}+1 : d'_i, ])

The multiplication order inside the sum is crucial: ``Ki (Ri X)`` avoids
computational redundancy, whereas ``(Ki Ri) X`` would effectively materialize
part of the join.  Both orders are implemented so the ablation benchmark can
measure the difference (:func:`lmm_star_materialized_order`).

Right multiplication ``X T`` (``X`` is ``m x n_S``) pushes the product into
each base matrix and concatenates column-wise::

    X T -> [X S, (X K1) R1, ..., (X Kq) Rq]

Double matrix multiplication (both operands normalized) is rare in ML but is
supported for the single-join case to match Appendix C.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import RewriteError, ShapeError
from repro.la import kernels
from repro.la.ops import hstack, matmul, transpose
from repro.la.types import MatrixLike, ensure_2d, to_dense


def _column_blocks(entity_width: int, attribute_widths: Sequence[int]) -> List[Tuple[int, int]]:
    """Return the half-open column ranges of ``[S, R1, ..., Rq]`` inside ``T``."""
    blocks = []
    start = 0
    if entity_width:
        blocks.append((0, entity_width))
        start = entity_width
    for width in attribute_widths:
        blocks.append((start, start + width))
        start += width
    return blocks


# ---------------------------------------------------------------------------
# Star-schema PK-FK
# ---------------------------------------------------------------------------

def lmm_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
             attributes: Sequence[MatrixLike], x: MatrixLike) -> np.ndarray:
    """Factorized left multiplication ``T @ X`` for a star-schema normalized matrix."""
    x = ensure_2d(x)
    entity_width = entity.shape[1] if entity is not None else 0
    attribute_widths = [r.shape[1] for r in attributes]
    total_width = entity_width + sum(attribute_widths)
    if x.shape[0] != total_width:
        raise ShapeError(f"LMM: X has {x.shape[0]} rows but T has {total_width} columns")
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    # The accumulator carries the operand result dtype (indicators excluded:
    # their stored float64 ones are structural and must not upcast float32).
    result = np.zeros((n_rows, x.shape[1]),
                      dtype=kernels.result_dtype(entity, *attributes, x))
    offset = 0
    if entity_width:
        result += to_dense(matmul(entity, x[0:entity_width, :]))
        offset = entity_width
    for indicator, attribute, width in zip(indicators, attributes, attribute_widths):
        block = x[offset:offset + width, :]
        # K (R X): compute the small product first, then scatter through K.
        result = kernels.gather_add(result, indicator, attribute, block)
        offset += width
    return result


def lmm_star_materialized_order(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                                attributes: Sequence[MatrixLike], x: MatrixLike) -> np.ndarray:
    """The *wrong* multiplication order ``(K R) X``, kept for the ablation study.

    Logically equivalent to :func:`lmm_star` but first expands ``K R`` -- i.e.
    materializes part of the join output -- before multiplying by ``X``.
    """
    x = ensure_2d(x)
    entity_width = entity.shape[1] if entity is not None else 0
    attribute_widths = [r.shape[1] for r in attributes]
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    result = np.zeros((n_rows, x.shape[1]))
    offset = 0
    if entity_width:
        result = result + to_dense(matmul(entity, x[0:entity_width, :]))
        offset = entity_width
    for indicator, attribute, width in zip(indicators, attributes, attribute_widths):
        block = x[offset:offset + width, :]
        expanded = matmul(indicator, attribute)
        result = result + to_dense(matmul(expanded, block))
        offset += width
    return result


def rmm_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
             attributes: Sequence[MatrixLike], x: MatrixLike) -> np.ndarray:
    """Factorized right multiplication ``X @ T`` for a star-schema normalized matrix."""
    x = ensure_2d(x)
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    if x.shape[1] != n_rows:
        raise ShapeError(f"RMM: X has {x.shape[1]} columns but T has {n_rows} rows")
    dtype = kernels.result_dtype(entity, *attributes, x)
    blocks: List[MatrixLike] = []
    if entity is not None and entity.shape[1] > 0:
        blocks.append(np.asarray(to_dense(matmul(x, entity)), dtype=dtype))
    for indicator, attribute in zip(indicators, attributes):
        # (X K) R: the intermediate X K is only m x nR.
        blocks.append(kernels.scatter_right(x, indicator, attribute, dtype))
    return np.hstack(blocks) if blocks else np.zeros((x.shape[0], 0), dtype=dtype)


# ---------------------------------------------------------------------------
# M:N joins
# ---------------------------------------------------------------------------

def lmm_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
           x: MatrixLike) -> np.ndarray:
    """Factorized left multiplication ``T @ X`` for ``T = [I1 R1, ..., Iq Rq]``."""
    x = ensure_2d(x)
    widths = [r.shape[1] for r in attributes]
    total_width = sum(widths)
    if x.shape[0] != total_width:
        raise ShapeError(f"LMM (M:N): X has {x.shape[0]} rows but T has {total_width} columns")
    n_rows = indicators[0].shape[0]
    result = np.zeros((n_rows, x.shape[1]),
                      dtype=kernels.result_dtype(*attributes, x))
    offset = 0
    for indicator, attribute, width in zip(indicators, attributes, widths):
        block = x[offset:offset + width, :]
        result = kernels.gather_add(result, indicator, attribute, block)
        offset += width
    return result


def rmm_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
           x: MatrixLike) -> np.ndarray:
    """Factorized right multiplication ``X @ T`` for ``T = [I1 R1, ..., Iq Rq]``."""
    x = ensure_2d(x)
    n_rows = indicators[0].shape[0]
    if x.shape[1] != n_rows:
        raise ShapeError(f"RMM (M:N): X has {x.shape[1]} columns but T has {n_rows} rows")
    dtype = kernels.result_dtype(*attributes, x)
    blocks = [kernels.scatter_right(x, indicator, attribute, dtype)
              for indicator, attribute in zip(indicators, attributes)]
    return np.hstack(blocks) if blocks else np.zeros((x.shape[0], 0), dtype=dtype)


# ---------------------------------------------------------------------------
# Double matrix multiplication (Appendix C), single-join case
# ---------------------------------------------------------------------------

def dmm_single(a_entity: MatrixLike, a_indicator: MatrixLike, a_attribute: MatrixLike,
               b_entity: MatrixLike, b_indicator: MatrixLike, b_attribute: MatrixLike
               ) -> np.ndarray:
    """Factorized product ``A @ B`` of two single-join normalized matrices.

    ``A = [S_A, K_A R_A]`` is ``n_A x d_A`` and ``B = [S_B, K_B R_B]`` is
    ``n_B x d_B`` with ``d_A == n_B``.  Appendix C splits ``S_B`` and ``K_B``
    row-wise at ``d_{S_A}`` and pushes the products down::

        A B -> [S_A S_B1 + K_A (R_A S_B2),
                (S_A K_B1) R_B + K_A ((R_A K_B2) R_B)]
    """
    d_sa = a_entity.shape[1]
    d_a = d_sa + a_attribute.shape[1]
    n_b = b_entity.shape[0] if b_entity is not None else b_indicator.shape[0]
    if d_a != n_b:
        raise ShapeError(f"DMM: A has {d_a} columns but B has {n_b} rows")
    if d_sa > n_b:
        raise RewriteError("DMM: entity width of A exceeds the row count of B")
    s_b1 = b_entity[:d_sa, :]
    s_b2 = b_entity[d_sa:, :]
    k_b1 = b_indicator[:d_sa, :]
    k_b2 = b_indicator[d_sa:, :]
    left = to_dense(matmul(a_entity, s_b1)) + to_dense(
        matmul(a_indicator, matmul(a_attribute, s_b2))
    )
    right = to_dense(matmul(matmul(a_entity, k_b1), b_attribute)) + to_dense(
        matmul(a_indicator, matmul(matmul(a_attribute, k_b2), b_attribute))
    )
    return np.hstack([left, right])


def dmm_gram_pair(a_entity: MatrixLike, a_indicator: MatrixLike, a_attribute: MatrixLike,
                  b_entity: MatrixLike, b_indicator: MatrixLike, b_attribute: MatrixLike
                  ) -> np.ndarray:
    """Factorized ``A^T @ B`` for two single-join normalized matrices (Appendix C).

    Both operands must have the same number of rows (``n_SA == n_SB``)::

        A^T B -> [[S_A^T S_B,        (S_A^T K_B) R_B       ],
                  [R_A^T (K_A^T S_B), R_A^T (K_A^T K_B) R_B]]

    The fourth tile computes ``P = K_A^T K_B`` first; Theorems C.1/C.2 bound
    ``nnz(P)`` between ``max(n_RA, n_RB)`` and ``n_SA``, so the intermediate
    stays sparse-friendly.
    """
    if a_entity.shape[0] != b_entity.shape[0]:
        raise ShapeError("transposed DMM: operands must have the same number of rows")
    upper_left = to_dense(matmul(transpose(a_entity), b_entity))
    upper_right = to_dense(matmul(matmul(transpose(a_entity), b_indicator), b_attribute))
    lower_left = to_dense(matmul(transpose(a_attribute), matmul(transpose(a_indicator), b_entity)))
    crossing = matmul(transpose(a_indicator), b_indicator)
    lower_right = to_dense(matmul(matmul(transpose(a_attribute), crossing), b_attribute))
    top = np.hstack([upper_left, upper_right])
    bottom = np.hstack([lower_left, lower_right])
    return np.vstack([top, bottom])


def dmm_outer_pair(a_entity: MatrixLike, a_indicator: MatrixLike, a_attribute: MatrixLike,
                   b_entity: MatrixLike, b_indicator: MatrixLike, b_attribute: MatrixLike
                   ) -> np.ndarray:
    """Factorized ``A @ B^T`` for two single-join normalized matrices (Appendix C).

    Implements the three cases based on the relative entity widths
    ``d_SA`` vs ``d_SB``; the output is a regular ``n_A x n_B`` matrix.
    """
    d_sa, d_sb = a_entity.shape[1], b_entity.shape[1]
    d_a = d_sa + a_attribute.shape[1]
    d_b = d_sb + b_attribute.shape[1]
    if d_a != d_b:
        raise ShapeError(f"A B^T requires equal total widths, got {d_a} and {d_b}")
    if d_sa == d_sb:
        part1 = to_dense(matmul(a_entity, transpose(b_entity)))
        inner = matmul(a_attribute, transpose(b_attribute))
        part2 = to_dense(matmul(matmul(a_indicator, inner), transpose(b_indicator)))
        return part1 + part2
    if d_sa < d_sb:
        s_b1 = b_entity[:, :d_sa]
        s_b2 = b_entity[:, d_sa:]
        split = d_sb - d_sa
        r_a1 = a_attribute[:, :split]
        r_a2 = a_attribute[:, split:]
        part1 = to_dense(matmul(a_entity, transpose(s_b1)))
        part2 = to_dense(matmul(a_indicator, matmul(r_a1, transpose(s_b2))))
        inner = matmul(r_a2, transpose(b_attribute))
        part3 = to_dense(matmul(matmul(a_indicator, inner), transpose(b_indicator)))
        return part1 + part2 + part3
    # d_sa > d_sb: recast as the transposed case-(2) problem.
    return dmm_outer_pair(b_entity, b_indicator, b_attribute,
                          a_entity, a_indicator, a_attribute).T
