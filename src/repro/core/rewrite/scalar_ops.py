"""Rewrite rules for element-wise scalar operators and scalar functions.

Paper reference: Section 3.3.1 (single PK-FK join), Section 3.5 (star schema)
and Appendix D/E (M:N joins).  The rules are trivial but ubiquitous: an
element-wise operation between the normalized matrix and a scalar, or a scalar
function applied element-wise, simply distributes over the base matrices and
leaves the indicator matrices untouched, so the output is again a normalized
matrix with the same structure::

    T (op) x  ->  (S (op) x, K1, ..., Kq, R1 (op) x, ..., Rq (op) x)
    f(T)      ->  (f(S),     K1, ..., Kq, f(R1),     ..., f(Rq))

The saving is the ratio of the materialized size to the total base-table size.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.la.ops import elementwise, scalar_op
from repro.la.types import MatrixLike

BaseMatrices = Tuple[Optional[MatrixLike], List[MatrixLike]]


def scalar_op_star(entity: Optional[MatrixLike], attributes: Sequence[MatrixLike],
                   op: str, scalar: float, reverse: bool = False) -> BaseMatrices:
    """Apply ``T (op) x`` (or ``x (op) T``) by distributing over ``S`` and every ``R_i``."""
    new_entity = scalar_op(entity, op, scalar, reverse=reverse) if entity is not None else None
    new_attributes = [scalar_op(r, op, scalar, reverse=reverse) for r in attributes]
    return new_entity, new_attributes


def function_star(entity: Optional[MatrixLike], attributes: Sequence[MatrixLike],
                  fn: Callable[[np.ndarray], np.ndarray]) -> BaseMatrices:
    """Apply an element-wise scalar function ``f(T)`` by distributing over the bases."""
    new_entity = elementwise(entity, fn) if entity is not None else None
    new_attributes = [elementwise(r, fn) for r in attributes]
    return new_entity, new_attributes


def scalar_op_mn(attributes: Sequence[MatrixLike], op: str, scalar: float,
                 reverse: bool = False) -> List[MatrixLike]:
    """M:N variant: apply ``T (op) x`` to every component matrix ``R_i``."""
    return [scalar_op(r, op, scalar, reverse=reverse) for r in attributes]


def function_mn(attributes: Sequence[MatrixLike],
                fn: Callable[[np.ndarray], np.ndarray]) -> List[MatrixLike]:
    """M:N variant: apply ``f(T)`` to every component matrix ``R_i``."""
    return [elementwise(r, fn) for r in attributes]
