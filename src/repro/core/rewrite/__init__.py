"""Factorized rewrite rules for linear-algebra operators.

Each module in this package implements one operator group of Table 1 as plain
functions over the base-table matrices, in two flavours:

* ``*_star`` functions operate on a star-schema PK-FK normalized matrix given
  as ``(S, Ks, Rs)`` where ``S`` is the entity-table feature matrix (possibly
  ``None`` when the entity table contributes no features), ``Ks`` is the list
  of sparse indicator matrices and ``Rs`` the list of attribute-table feature
  matrices (Sections 3.3 and 3.5 of the paper).
* ``*_mn`` functions operate on a (multi-table) M:N normalized matrix given as
  ``(indicators, Rs)`` -- one sparse indicator per component, including the
  entity table, so that ``T = [I1 R1, ..., Iq Rq]`` (Section 3.6 and
  Appendices D/E).

Keeping the rules as free functions (rather than methods) lets the test suite
verify each rewrite against its materialized counterpart directly, and lets
the ablation benchmarks compare alternative rewrites (naive vs. efficient
cross-product, the two LMM multiplication orders) without touching the
``NormalizedMatrix`` classes.
"""

from repro.core.rewrite import (
    aggregation,
    crossprod,
    delta,
    inversion,
    multiplication,
    scalar_ops,
)

__all__ = ["aggregation", "crossprod", "delta", "inversion", "multiplication", "scalar_ops"]
