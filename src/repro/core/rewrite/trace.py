"""Structural tracing of the factorized rewrite rules (golden-test support).

Every rewrite rule in :mod:`repro.core.rewrite` is expressed exclusively in
terms of the primitives of :mod:`repro.la.ops` -- that is the closure
property.  This module exploits it for regression protection: it temporarily
wraps those primitives *inside the rewrite modules*, runs a Table-1 operator
on a canonical schema, and records every primitive call as one step of an
SSA-style operator tree::

    {"id": "%0", "op": "matmul", "args": ["R1", {"anon": [3, 2]}], "shape": [4, 2]}
    {"id": "%1", "op": "matmul", "args": ["K1", "%0"],             "shape": [8, 2]}

Base matrices appear under their paper names (``S``, ``K1``, ``R1``, ...),
intermediate results by the step id that produced them, and untracked
temporaries (NumPy views, slices) as ``{"anon": shape}``.  The serialized
trace captures exactly the *factorized algebra* -- including the
multiplication order ``K (R X)`` vs. ``(K R) X`` that the paper's Section 3.3
identifies as the crucial rewrite decision -- while being independent of the
matrix values.  The golden files under ``tests/goldens/`` pin these traces;
any refactor that silently changes the rewritten algebra fails the
structural-equality test.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Callable, Dict, List, Mapping

import numpy as np

from repro.core.rewrite import aggregation
from repro.core.rewrite import crossprod as crossprod_rules
from repro.core.rewrite import delta as delta_rules
from repro.core.rewrite import inversion, multiplication, scalar_ops
from repro.la import kernels as kernel_layer

#: Primitive names whose calls constitute the rewritten operator tree.
PRIMITIVES = frozenset({
    "matmul", "transpose", "rowsums", "colsums", "total_sum", "crossprod",
    "diag_scale_rows", "scalar_op", "elementwise", "ginv", "hstack", "vstack",
})

#: The rewrite modules whose primitive calls are intercepted.  The kernel
#: layer is one of them: patching its primitives makes its dispatcher route
#: every kernel to the "reference" implementations, whose primitive chains
#: are exactly the pre-kernel rewrite algebra -- so the recorded traces are
#: independent of which fused set is active.
REWRITE_MODULES = (aggregation, crossprod_rules, delta_rules, inversion,
                   multiplication, scalar_ops, kernel_layer)


class RewriteTrace:
    """Recorder for one traced rewrite execution."""

    def __init__(self):
        self.steps: List[dict] = []
        self._names: Dict[int, str] = {}
        self._alive: List[object] = []  # keeps traced objects alive so ids stay unique

    def register(self, name: str, operand: object) -> None:
        """Give *operand* a stable name in the recorded trees (e.g. ``"K1"``)."""
        self._names[id(operand)] = name
        self._alive.append(operand)

    def describe(self, value) -> object:
        """JSON-able descriptor of one primitive argument."""
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, (np.integer, np.floating)):
            return float(value)
        if id(value) in self._names:
            return self._names[id(value)]
        if isinstance(value, (list, tuple)):
            return [self.describe(v) for v in value]
        if callable(value):
            return {"fn": getattr(value, "__name__", "callable")}
        if hasattr(value, "shape"):
            return {"anon": [int(s) for s in value.shape]}
        return {"value": repr(value)}  # pragma: no cover - defensive

    def record(self, op: str, args: tuple, kwargs: dict, result) -> None:
        step = {"op": op, "args": [self.describe(a) for a in args]}
        if kwargs:
            step["kwargs"] = {k: self.describe(v) for k, v in sorted(kwargs.items())}
        if hasattr(result, "shape"):
            ref = f"%{len(self.steps)}"
            step["id"] = ref
            step["shape"] = [int(s) for s in result.shape]
            self._names[id(result)] = ref
            self._alive.append(result)
        self.steps.append(step)


def _wrap(tracer: RewriteTrace, fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        result = fn(*args, **kwargs)
        tracer.record(fn.__name__, args, kwargs, result)
        return result

    wrapper.__wrapped_primitive__ = fn
    return wrapper


@contextlib.contextmanager
def trace_rewrites(named_operands: Mapping[str, object]):
    """Intercept every :mod:`repro.la.ops` primitive used by the rewrite modules.

    The patch targets the names *imported into* each rewrite module (they use
    ``from repro.la.ops import ...``), matching by the underlying function's
    ``__name__`` so aliases like ``inversion.dense_ginv`` are covered too.
    Yields the :class:`RewriteTrace` collecting the steps.
    """
    tracer = RewriteTrace()
    for name, operand in named_operands.items():
        tracer.register(name, operand)
    patched: List[tuple] = []
    try:
        for module in REWRITE_MODULES:
            for attr, value in list(vars(module).items()):
                if callable(value) and getattr(value, "__module__", None) == "repro.la.ops" \
                        and value.__name__ in PRIMITIVES:
                    setattr(module, attr, _wrap(tracer, value))
                    patched.append((module, attr, value))
        yield tracer
    finally:
        for module, attr, original in patched:
            setattr(module, attr, original)


# ---------------------------------------------------------------------------
# Canonical schemas and the Table-1 trace set
# ---------------------------------------------------------------------------

def canonical_star_schema():
    """A small deterministic 2-join star schema with full column rank.

    Returns ``(normalized, named_operands)``: an 8x7 logical matrix with
    ``S`` 8x2, ``(K1, R1)`` joining 4 attribute rows of width 3 and
    ``(K2, R2)`` joining 2 attribute rows of width 2.  Values are seeded but
    the traces depend only on the structure.
    """
    from repro.core.normalized_matrix import NormalizedMatrix
    from repro.la.ops import indicator_from_labels

    rng = np.random.default_rng(42)
    entity = rng.standard_normal((8, 2))
    r1 = rng.standard_normal((4, 3))
    r2 = rng.standard_normal((2, 2))
    k1 = indicator_from_labels(np.array([0, 1, 2, 3, 0, 1, 2, 3]), num_columns=4)
    k2 = indicator_from_labels(np.array([0, 1, 0, 1, 0, 1, 0, 1]), num_columns=2)
    normalized = NormalizedMatrix(entity, [k1, k2], [r1, r2])
    named = {"S": entity, "K1": k1, "K2": k2, "R1": r1, "R2": r2}
    return normalized, named


def canonical_snowflake_schema():
    """A deterministic two-hop snowflake schema (8 entity rows).

    Returns ``(normalized, named_operands)``: ``S`` 8x2; a single-hop join
    ``(K1, R1)`` with 4 attribute rows of width 3; and a two-hop chain
    ``C1 = H1 H2`` (8 -> 4 -> 2) kept factorized, routing to ``R2`` (2 rows,
    width 2).  The chain itself is registered as ``C1`` so the goldens pin
    exactly where the rewrites touch the chain as one indicator -- the
    per-hop folds live inside :class:`~repro.la.chain.ChainedIndicator`,
    below the rewrite algebra.
    """
    from repro.core.normalized_matrix import NormalizedMatrix
    from repro.la.chain import ChainedIndicator
    from repro.la.ops import indicator_from_labels

    rng = np.random.default_rng(42)
    entity = rng.standard_normal((8, 2))
    r1 = rng.standard_normal((4, 3))
    r2 = rng.standard_normal((2, 2))
    k1 = indicator_from_labels(np.array([0, 1, 2, 3, 0, 1, 2, 3]), num_columns=4)
    h1 = indicator_from_labels(np.array([0, 1, 2, 3, 3, 2, 1, 0]), num_columns=4)
    h2 = indicator_from_labels(np.array([0, 1, 0, 1]), num_columns=2)
    chain = ChainedIndicator([h1, h2])
    normalized = NormalizedMatrix(entity, [k1, chain], [r1, r2])
    named = {"S": entity, "K1": k1, "H1": h1, "H2": h2, "C1": chain,
             "R1": r1, "R2": r2}
    return normalized, named


def canonical_mn_schema():
    """A deterministic two-component M:N schema (10 output rows)."""
    from repro.core.mn_matrix import MNNormalizedMatrix
    from repro.la.ops import indicator_from_labels

    rng = np.random.default_rng(7)
    r1 = rng.standard_normal((4, 2))
    r2 = rng.standard_normal((3, 3))
    i1 = indicator_from_labels(np.array([0, 1, 2, 3, 0, 1, 2, 3, 0, 1]), num_columns=4)
    i2 = indicator_from_labels(np.array([0, 1, 2, 0, 1, 2, 0, 1, 2, 0]), num_columns=3)
    normalized = MNNormalizedMatrix([i1, i2], [r1, r2])
    named = {"I1": i1, "I2": i2, "R1": r1, "R2": r2}
    return normalized, named


def table1_traces() -> Dict[str, dict]:
    """Trace every Table-1 operator on the canonical schemas.

    Returns ``{trace_name: {"schema": ..., "operator": ..., "steps": [...]}}``,
    the exact structures serialized into ``tests/goldens/*.json``.
    """
    rng = np.random.default_rng(3)
    traces: Dict[str, dict] = {}

    star, star_named = canonical_star_schema()
    x = rng.standard_normal((star.shape[1], 2))
    w = rng.standard_normal((2, star.shape[0]))
    y = rng.standard_normal((star.shape[0], 2))
    star_ops = {
        "star_scalar_multiply": lambda tn: tn * 3.0,
        "star_scalar_add": lambda tn: tn + 3.0,
        "star_scalar_power": lambda tn: tn ** 2,
        "star_apply_exp": lambda tn: tn.apply(np.exp),
        "star_rowsums": lambda tn: tn.rowsums(),
        "star_colsums": lambda tn: tn.colsums(),
        "star_total_sum": lambda tn: tn.total_sum(),
        "star_lmm": lambda tn: tn @ x,
        "star_rmm": lambda tn: w @ tn,
        "star_transposed_lmm": lambda tn: tn.T @ y,
        "star_crossprod_naive": lambda tn: tn.crossprod(method="naive"),
        "star_crossprod_efficient": lambda tn: tn.crossprod(method="efficient"),
        "star_gram_transposed": lambda tn: tn.T.crossprod(),
        "star_ginv": lambda tn: tn.ginv(),
        "star_solve": lambda tn: tn.solve(y[:, :1]),
    }
    star_args = dict(star_named, X=x, W=w, Y=y)
    for name, op in star_ops.items():
        with trace_rewrites(star_args) as tracer:
            op(star)
        traces[name] = {"schema": "canonical-star", "operator": name,
                        "steps": tracer.steps}

    snow, snow_named = canonical_snowflake_schema()
    x_sf = rng.standard_normal((snow.shape[1], 2))
    w_sf = rng.standard_normal((2, snow.shape[0]))
    y_sf = rng.standard_normal((snow.shape[0], 2))
    snow_ops = {
        "snowflake_lmm": lambda tn: tn @ x_sf,
        "snowflake_rmm": lambda tn: w_sf @ tn,
        "snowflake_transposed_lmm": lambda tn: tn.T @ y_sf,
        "snowflake_crossprod_naive": lambda tn: tn.crossprod(method="naive"),
        "snowflake_crossprod_efficient": lambda tn: tn.crossprod(method="efficient"),
        "snowflake_rowsums": lambda tn: tn.rowsums(),
        "snowflake_colsums": lambda tn: tn.colsums(),
        "snowflake_total_sum": lambda tn: tn.total_sum(),
    }
    snow_args = dict(snow_named, X=x_sf, W=w_sf, Y=y_sf)
    for name, op in snow_ops.items():
        with trace_rewrites(snow_args) as tracer:
            op(snow)
        traces[name] = {"schema": "canonical-snowflake", "operator": name,
                        "steps": tracer.steps}

    mn, mn_named = canonical_mn_schema()
    x_mn = rng.standard_normal((mn.shape[1], 2))
    w_mn = rng.standard_normal((2, mn.shape[0]))
    mn_ops = {
        "mn_rowsums": lambda tn: tn.rowsums(),
        "mn_colsums": lambda tn: tn.colsums(),
        "mn_total_sum": lambda tn: tn.total_sum(),
        "mn_lmm": lambda tn: tn @ x_mn,
        "mn_rmm": lambda tn: w_mn @ tn,
        "mn_crossprod": lambda tn: tn.crossprod(),
        "mn_scalar_multiply": lambda tn: tn * 2.0,
    }
    mn_args = dict(mn_named, X=x_mn, W=w_mn)
    for name, op in mn_ops.items():
        with trace_rewrites(mn_args) as tracer:
            op(mn)
        traces[name] = {"schema": "canonical-mn", "operator": name,
                        "steps": tracer.steps}

    traces.update(_delta_traces(star, star_named, x, y, mn, mn_named, x_mn))
    return traces


def _delta_traces(star, star_named, x, y, mn, mn_named, x_mn) -> Dict[str, dict]:
    """Trace the rank-|Δ| delta rules on the canonical schemas.

    A deterministic two-row delta on table/component 1; the delta operands
    get their own names (``D`` = new - old, ``Dold`` / ``Dnew`` the row
    values, ``G`` the pre-delta Gram matrix, ``R1p`` the post-delta table).
    """
    rng = np.random.default_rng(11)
    traces: Dict[str, dict] = {}

    rows = np.array([0, 2])
    r1 = star.attributes[0]
    d_old = np.array(r1[rows, :])
    d_new = d_old + rng.standard_normal(d_old.shape)
    dvals = d_new - d_old
    r1p = np.array(r1)
    r1p[rows, :] = d_new
    gram = star.crossprod()
    k1 = star_named["K1"]
    x_block = x[star.entity_width:star.entity_width + r1.shape[1], :]
    star_delta_ops = {
        "star_delta_lmm": lambda: delta_rules.delta_lmm(k1, rows, dvals, x_block),
        "star_delta_transposed_lmm": lambda: delta_rules.delta_tlmm_block(
            k1, rows, dvals, y),
        "star_delta_rowsums": lambda: delta_rules.delta_rowsums(k1, rows, dvals),
        "star_delta_colsums": lambda: delta_rules.delta_colsums_block(k1, rows, dvals),
        "star_delta_total_sum": lambda: delta_rules.delta_total_sum(k1, rows, dvals),
        "star_delta_crossprod": lambda: delta_rules.patch_crossprod(
            gram, star.entity, star.indicators, [r1p, star.attributes[1]],
            0, rows, d_old, d_new),
    }
    star_args = dict(star_named, X=x, Y=y, D=dvals, Dold=d_old, Dnew=d_new,
                     G=gram, R1p=r1p)
    for name, op in star_delta_ops.items():
        with trace_rewrites(star_args) as tracer:
            op()
        traces[name] = {"schema": "canonical-star", "operator": name,
                        "steps": tracer.steps}

    rows_mn = np.array([1, 3])
    r1_mn = mn.attributes[0]
    d_old_mn = np.array(r1_mn[rows_mn, :])
    d_new_mn = d_old_mn + rng.standard_normal(d_old_mn.shape)
    dvals_mn = d_new_mn - d_old_mn
    r1p_mn = np.array(r1_mn)
    r1p_mn[rows_mn, :] = d_new_mn
    gram_mn = mn.crossprod()
    i1 = mn_named["I1"]
    mn_delta_ops = {
        "mn_delta_lmm": lambda: delta_rules.delta_lmm(
            i1, rows_mn, dvals_mn, x_mn[: r1_mn.shape[1], :]),
        "mn_delta_crossprod": lambda: delta_rules.patch_crossprod(
            gram_mn, None, mn.indicators, [r1p_mn, mn.attributes[1]],
            0, rows_mn, d_old_mn, d_new_mn),
    }
    mn_args = dict(mn_named, X=x_mn, D=dvals_mn, Dold=d_old_mn, Dnew=d_new_mn,
                   G=gram_mn, R1p=r1p_mn)
    for name, op in mn_delta_ops.items():
        with trace_rewrites(mn_args) as tracer:
            op()
        traces[name] = {"schema": "canonical-mn", "operator": name,
                        "steps": tracer.steps}
    return traces
