"""Rewrite rules for the aggregation operators rowSums, colSums and sum.

Paper reference: Section 3.3.2 (single PK-FK join), Section 3.5 (star schema),
Appendix A (transposed inputs) and Appendices D/E (M:N joins).  These are the
LA counterparts of SQL aggregate push-down: the aggregation is computed on the
base matrices first and the small partial results are then combined through
the indicator matrices.

Star-schema rules (``T = [S, K1 R1, ..., Kq Rq]``)::

    rowSums(T) -> rowSums(S) + sum_i Ki rowSums(Ri)
    colSums(T) -> [colSums(S), colSums(K1) R1, ..., colSums(Kq) Rq]
    sum(T)     -> sum(S) + sum_i colSums(Ki) rowSums(Ri)

M:N rules (``T = [I1 R1, ..., Iq Rq]``)::

    rowSums(T) -> sum_i Ii rowSums(Ri)
    colSums(T) -> [colSums(I1) R1, ..., colSums(Iq) Rq]
    sum(T)     -> sum_i colSums(Ii) rowSums(Ri)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.la import kernels
from repro.la.ops import colsums, rowsums, total_sum
from repro.la.types import MatrixLike


# ---------------------------------------------------------------------------
# Star-schema PK-FK
# ---------------------------------------------------------------------------

def rowsums_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                 attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``rowSums(T)`` as an ``(n_S, 1)`` column vector."""
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    acc = np.zeros((n_rows, 1))
    if entity is not None and entity.shape[1] > 0:
        acc = acc + rowsums(entity)
    for indicator, attribute in zip(indicators, attributes):
        acc = acc + kernels.gather_rows(indicator, attribute)
    return acc


def colsums_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                 attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``colSums(T)`` as a ``(1, d)`` row vector in column order ``[S, R1, ..., Rq]``."""
    blocks = []
    if entity is not None and entity.shape[1] > 0:
        blocks.append(colsums(entity))
    for indicator, attribute in zip(indicators, attributes):
        blocks.append(kernels.scatter_colsums(indicator, attribute))
    if not blocks:
        return np.zeros((1, 0))
    return np.hstack(blocks)


def sum_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
             attributes: Sequence[MatrixLike]) -> float:
    """``sum(T)``: total of all elements of the (virtual) join output."""
    total = 0.0
    if entity is not None and entity.shape[1] > 0:
        total += total_sum(entity)
    for indicator, attribute in zip(indicators, attributes):
        total += kernels.scatter_total(indicator, attribute)
    return total


# ---------------------------------------------------------------------------
# M:N joins (entity handled as just another component)
# ---------------------------------------------------------------------------

def rowsums_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``rowSums(T)`` for ``T = [I1 R1, ..., Iq Rq]``."""
    n_rows = indicators[0].shape[0]
    acc = np.zeros((n_rows, 1))
    for indicator, attribute in zip(indicators, attributes):
        acc = acc + kernels.gather_rows(indicator, attribute)
    return acc


def colsums_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``colSums(T)`` for ``T = [I1 R1, ..., Iq Rq]``."""
    blocks = [kernels.scatter_colsums(indicator, attribute)
              for indicator, attribute in zip(indicators, attributes)]
    if not blocks:
        return np.zeros((1, 0))
    return np.hstack(blocks)


def sum_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike]) -> float:
    """``sum(T)`` for ``T = [I1 R1, ..., Iq Rq]``."""
    total = 0.0
    for indicator, attribute in zip(indicators, attributes):
        total += kernels.scatter_total(indicator, attribute)
    return total
