"""Rewrite rules for the cross-product (Gram matrix) operator.

Paper reference: Section 3.3.5 (naive Algorithm 1 and efficient Algorithm 2),
Section 3.5 (star schema block decomposition), Appendix A (transposed input,
i.e. the Gramian ``T T^T``) and Appendices D/E (M:N joins).

``crossprod(T) = T^T T`` is the workhorse of linear regression via normal
equations, covariance and PCA.  The efficient rewrite exploits two facts:

1. ``crossprod(S)`` computes only half of ``S^T S`` (symmetry).
2. ``K^T K`` is diagonal with ``diag(colSums(K))`` on the diagonal, so
   ``R^T (K^T K) R = crossprod(diag(colSums(K))^{1/2} R)`` -- no sparse
   transpose product and another halving of the arithmetic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.la import kernels
from repro.la.ops import crossprod, matmul, transpose
from repro.la.types import MatrixLike, to_dense


# ---------------------------------------------------------------------------
# Star-schema PK-FK
# ---------------------------------------------------------------------------

def crossprod_star_naive(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                         attributes: Sequence[MatrixLike]) -> np.ndarray:
    """Algorithm 1: the straightforward factorized cross-product.

    Uses ``S^T S`` and ``R^T (K^T K) R`` directly; kept as the baseline for
    the ablation benchmark against :func:`crossprod_star_efficient`.
    """
    entity_width = entity.shape[1] if entity is not None else 0
    widths = [r.shape[1] for r in attributes]
    total = entity_width + sum(widths)
    dtype = kernels.result_dtype(entity, *attributes)
    out = np.zeros((total, total), dtype=dtype)
    offsets = _offsets(entity_width, widths)

    if entity_width:
        out[:entity_width, :entity_width] = to_dense(matmul(transpose(entity), entity))
    for i, (indicator, attribute) in enumerate(zip(indicators, attributes)):
        oi, wi = offsets[i], widths[i]
        if entity_width:
            # P = R^T (K^T S); lower-left block and its transpose.
            partial = to_dense(matmul(transpose(attribute), matmul(transpose(indicator), entity)))
            out[oi:oi + wi, :entity_width] = partial
            out[:entity_width, oi:oi + wi] = partial.T
        gram_indicator = matmul(transpose(indicator), indicator)
        out[oi:oi + wi, oi:oi + wi] = to_dense(
            matmul(transpose(attribute), matmul(gram_indicator, attribute))
        )
        for j in range(i + 1, len(attributes)):
            oj, wj = offsets[j], widths[j]
            block = kernels.cross_block(indicator, indicators[j],
                                        attribute, attributes[j], dtype)
            out[oi:oi + wi, oj:oj + wj] = block
            out[oj:oj + wj, oi:oi + wi] = block.T
    return out


def crossprod_star_efficient(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                             attributes: Sequence[MatrixLike]) -> np.ndarray:
    """Algorithm 2: the optimized factorized cross-product.

    Diagonal attribute blocks use
    ``crossprod(diag(colSums(K_i))^{1/2} R_i)``; the entity block uses
    ``crossprod(S)``; off-diagonal blocks are ``(S^T K_i) R_i`` and
    ``R_i^T (K_i^T K_j) R_j`` exactly as in Section 3.5.
    """
    entity_width = entity.shape[1] if entity is not None else 0
    widths = [r.shape[1] for r in attributes]
    total = entity_width + sum(widths)
    dtype = kernels.result_dtype(entity, *attributes)
    out = np.zeros((total, total), dtype=dtype)
    offsets = _offsets(entity_width, widths)

    if entity_width:
        out[:entity_width, :entity_width] = to_dense(crossprod(entity))
    for i, (indicator, attribute) in enumerate(zip(indicators, attributes)):
        oi, wi = offsets[i], widths[i]
        if entity_width:
            # (S^T K_i) R_i: small intermediate of size dS x nRi.
            partial = kernels.entity_cross_block(entity, indicator, attribute, dtype)
            out[:entity_width, oi:oi + wi] = partial
            out[oi:oi + wi, :entity_width] = partial.T
        out[oi:oi + wi, oi:oi + wi] = kernels.scatter_crossprod(indicator,
                                                                attribute, dtype)
        for j in range(i + 1, len(attributes)):
            oj, wj = offsets[j], widths[j]
            block = kernels.cross_block(indicator, indicators[j],
                                        attribute, attributes[j], dtype)
            out[oi:oi + wi, oj:oj + wj] = block
            out[oj:oj + wj, oi:oi + wi] = block.T
    return out


def gram_transposed_star(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
                         attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``crossprod(T^T) = T T^T`` (the Gramian), an ``n_S x n_S`` regular matrix.

    Appendix A rule, generalized to the star schema::

        crossprod(T^T) -> crossprod(S^T) + sum_i K_i crossprod(R_i^T) K_i^T
    """
    n_rows = indicators[0].shape[0] if indicators else entity.shape[0]
    out = np.zeros((n_rows, n_rows), dtype=kernels.result_dtype(entity, *attributes))
    if entity is not None and entity.shape[1] > 0:
        out += to_dense(matmul(entity, transpose(entity)))
    for indicator, attribute in zip(indicators, attributes):
        out = kernels.gather_gram(out, indicator, attribute)
    return out


def _offsets(entity_width: int, widths: Sequence[int]) -> List[int]:
    """Column offsets of each attribute block inside ``T``."""
    offsets = []
    start = entity_width
    for width in widths:
        offsets.append(start)
        start += width
    return offsets


# ---------------------------------------------------------------------------
# M:N joins
# ---------------------------------------------------------------------------

def crossprod_mn_naive(indicators: Sequence[MatrixLike],
                       attributes: Sequence[MatrixLike]) -> np.ndarray:
    """Algorithm 9: naive factorized cross-product for M:N normalized matrices."""
    widths = [r.shape[1] for r in attributes]
    total = sum(widths)
    dtype = kernels.result_dtype(*attributes)
    out = np.zeros((total, total), dtype=dtype)
    offsets = _offsets(0, widths)
    for i, (indicator, attribute) in enumerate(zip(indicators, attributes)):
        oi, wi = offsets[i], widths[i]
        gram_indicator = matmul(transpose(indicator), indicator)
        out[oi:oi + wi, oi:oi + wi] = to_dense(
            matmul(transpose(attribute), matmul(gram_indicator, attribute))
        )
        for j in range(i + 1, len(attributes)):
            oj, wj = offsets[j], widths[j]
            block = kernels.cross_block(indicator, indicators[j],
                                        attribute, attributes[j], dtype)
            out[oi:oi + wi, oj:oj + wj] = block
            out[oj:oj + wj, oi:oi + wi] = block.T
    return out


def crossprod_mn_efficient(indicators: Sequence[MatrixLike],
                           attributes: Sequence[MatrixLike]) -> np.ndarray:
    """Algorithm 10: efficient factorized cross-product for M:N normalized matrices."""
    widths = [r.shape[1] for r in attributes]
    total = sum(widths)
    dtype = kernels.result_dtype(*attributes)
    out = np.zeros((total, total), dtype=dtype)
    offsets = _offsets(0, widths)
    for i, (indicator, attribute) in enumerate(zip(indicators, attributes)):
        oi, wi = offsets[i], widths[i]
        out[oi:oi + wi, oi:oi + wi] = kernels.scatter_crossprod(indicator,
                                                                attribute, dtype)
        for j in range(i + 1, len(attributes)):
            oj, wj = offsets[j], widths[j]
            block = kernels.cross_block(indicator, indicators[j],
                                        attribute, attributes[j], dtype)
            out[oi:oi + wi, oj:oj + wj] = block
            out[oj:oj + wj, oi:oi + wi] = block.T
    return out


def gram_transposed_mn(indicators: Sequence[MatrixLike],
                       attributes: Sequence[MatrixLike]) -> np.ndarray:
    """``crossprod(T^T)`` for M:N: ``sum_i I_i crossprod(R_i^T) I_i^T``."""
    n_rows = indicators[0].shape[0]
    out = np.zeros((n_rows, n_rows), dtype=kernels.result_dtype(*attributes))
    for indicator, attribute in zip(indicators, attributes):
        out = kernels.gather_gram(out, indicator, attribute)
    return out
