"""Row-sharded operands executing Table-1 operators through a worker pool.

Every factorized operator of the paper is embarrassingly parallel over row
shards of the (logical) data matrix: row-sharding ``T`` corresponds to
row-sharding the entity matrix ``S`` and the indicator matrices ``K_i``/``I_i``
while *sharing* the attribute matrices ``R_i``, and each Table-1 operator
either concatenates per-shard results (LMM, ``rowSums``, element-wise ops) or
sums them (RMM, ``crossprod``, ``colSums``, ``sum``).  This module provides
the two operand types that exploit that:

* :class:`ShardedMatrix` -- a plain dense/sparse matrix stored as row shards,
  the parallel sibling of :class:`repro.la.chunked.ChunkedMatrix`.
* :class:`ShardedNormalizedMatrix` -- row shards of a
  :class:`~repro.core.normalized_matrix.NormalizedMatrix` or
  :class:`~repro.core.mn_matrix.MNNormalizedMatrix`, built with their
  ``.shard(n_shards, pool=...)`` methods.  Each shard is itself a normalized
  matrix, so every per-shard operator runs through the *existing* factorized
  rewrite rules; this class only fans out and reduces.

Both types dispatch shard work through a
:class:`~repro.la.parallel.ParallelExecutor` whose pool is pluggable (serial /
threads / processes / any ``concurrent.futures`` executor).  All shard
functions are module-level so they survive pickling into a
:class:`~repro.la.parallel.ProcessPool`; only ``elementwise`` with a
non-picklable callable is thread/serial-only.

With one shard the fan-out degenerates to the unsharded computation -- the
executor runs single-item maps inline and the reductions are identity
operations -- so ``n_shards=1`` is bit-for-bit identical to serial execution.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.la import generic
from repro.la import ops as la_ops
from repro import obs
from repro.la.parallel import ParallelExecutor, PoolSpec

_SHARD_BUILDS = obs.REGISTRY.counter(
    "repro_shard_builds_total",
    "Sharded operands constructed, by source kind",
    labels=("kind",),
)
from repro.la.types import MatrixLike, ensure_2d, is_matrix_like, is_sparse, to_dense

Scalar = Union[int, float, np.floating, np.integer]

_PY_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "**": operator.pow,
}

_EW_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide}


def _is_scalar(value: object) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) and not isinstance(value, bool)


def shard_bounds(n_rows: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous row partition: ``[(start, stop), ...]``.

    The shard count is clamped to the row count (a 1-row matrix yields one
    shard no matter what was requested), and row surplus goes to the leading
    shards so sizes differ by at most one.  A zero-row matrix partitions into
    a single empty shard ``[(0, 0)]`` rather than dividing by a clamped shard
    count of zero, so degenerate inputs (empty train/test splits, drained
    streams) flow through the sharded wrappers instead of crashing.
    """
    if n_rows < 0:
        raise ShapeError("cannot shard a matrix with negative rows")
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_rows == 0:
        return [(0, 0)]
    n_shards = min(int(n_shards), int(n_rows))
    base, extra = divmod(int(n_rows), n_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ---------------------------------------------------------------------------
# Module-level shard functions (picklable, so ProcessPool works).
# Each takes one argument tuple and handles both plain shards and normalized
# pieces, dispatching plain matrices through repro.la.ops and logical pieces
# through their own (factorized) operator overloads.
# ---------------------------------------------------------------------------

def _shard_matmul(args):
    shard, other = args
    if is_matrix_like(shard):
        return la_ops.matmul(shard, other)
    return shard @ other


def _shard_rmatmul(args):
    other_slice, shard = args
    if is_matrix_like(shard):
        return la_ops.matmul(other_slice, shard)
    return other_slice @ shard


def _shard_transpose_matmul(args):
    shard, other_slice = args
    if is_matrix_like(shard):
        return to_dense(la_ops.matmul(la_ops.transpose(shard), other_slice))
    return shard.T @ other_slice


def _shard_crossprod(args):
    shard, method = args
    if hasattr(shard, "crossprod"):
        return shard.crossprod(method) if method else shard.crossprod()
    return to_dense(la_ops.crossprod(shard))


def _shard_rowsums(shard):
    return generic.rowsums(shard)


def _shard_colsums(shard):
    return generic.colsums(shard)


def _shard_total_sum(shard):
    return generic.total_sum(shard)


def _shard_scalar_op(args):
    shard, op, scalar, reverse = args
    if is_matrix_like(shard):
        return la_ops.scalar_op(shard, op, scalar, reverse=reverse)
    fn = _PY_OPS[op]
    return fn(scalar, shard) if reverse else fn(shard, scalar)


def _shard_elementwise_fn(args):
    shard, fn = args
    return generic.elementwise(shard, fn)


def _shard_elementwise_matrix(args):
    shard, other_slice, op, reverse = args
    if is_matrix_like(shard):
        fn = _EW_UFUNCS[op]
        left = to_dense(ensure_2d(other_slice)) if reverse else to_dense(ensure_2d(shard))
        right = to_dense(ensure_2d(shard)) if reverse else to_dense(ensure_2d(other_slice))
        return fn(left, right)
    fn = _PY_OPS[op]
    return fn(other_slice, shard) if reverse else fn(shard, other_slice)


def _shard_materialize(shard):
    return shard.materialize() if hasattr(shard, "materialize") else shard


def _shard_pair_outer(args):
    """One ``T_i T_j^T`` block of the transposed cross-product."""
    left, right = args
    return to_dense(left @ right.T)


def _split_rows(matrix: MatrixLike, bounds: Sequence[Tuple[int, int]]) -> List[MatrixLike]:
    matrix = ensure_2d(matrix)
    return [matrix[start:stop, :] for start, stop in bounds]


def _split_cols(matrix: MatrixLike, bounds: Sequence[Tuple[int, int]]) -> List[MatrixLike]:
    matrix = ensure_2d(matrix)
    return [matrix[:, start:stop] for start, stop in bounds]


def _align_row_operand(other, bounds: Sequence[Tuple[int, int]]) -> List[MatrixLike]:
    """Row slices of *other* aligned with *bounds*.

    Accepts plain matrices and row-partitioned logical operands: a
    :class:`ShardedMatrix` with identical bounds (the common case --
    ``T.T @ (T @ w)`` composes a sharded LMM result straight back in)
    contributes its shards with no copying; other logical operands
    (differently-bounded sharded results, chunked matrices) are concretized
    first.
    """
    if isinstance(other, ShardedMatrix):
        if list(other.bounds) == list(bounds):
            return list(other.shards)
        other = other.to_matrix()
    elif not is_matrix_like(other):
        if hasattr(other, "to_matrix"):
            other = other.to_matrix()
        elif hasattr(other, "to_dense"):
            other = other.to_dense()
    return _split_rows(other, bounds)


def _sum_partials(parts: List):
    total = parts[0]
    for part in parts[1:]:
        total = total + part
    return total


class TransposedShardedView:
    """Read-only transpose view of a :class:`ShardedMatrix`.

    Like :class:`repro.la.chunked.TransposedChunkedView`, it supports exactly
    the ``T.T @ X`` products the ML scripts use, delegating to the parent's
    parallel :meth:`ShardedMatrix.transpose_matmul`.
    """

    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, parent: "ShardedMatrix"):
        self._parent = parent

    @property
    def shape(self) -> tuple:
        rows, cols = self._parent.shape
        return (cols, rows)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "ShardedMatrix":
        return self._parent

    def __matmul__(self, other: MatrixLike) -> np.ndarray:
        return self._parent.transpose_matmul(other)

    def to_dense(self) -> np.ndarray:
        return self._parent.to_dense().T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransposedShardedView(shape={self.shape})"


class ShardedMatrix:
    """A plain matrix stored as row shards with a pluggable worker pool.

    The operator surface matches :class:`~repro.la.chunked.ChunkedMatrix`
    (the Table-1 subset the rewrite rules and ML algorithms need) but every
    operator fans its per-shard work out through the attached
    :class:`~repro.la.parallel.ParallelExecutor` and reduces the partials.
    Size-of-input results (LMM outputs, element-wise results) stay sharded and
    share the pool; small results (aggregates, Gram matrices) come back as
    ordinary in-memory matrices.
    """

    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, shards: Sequence[MatrixLike], pool: PoolSpec = None,
                 executor: Optional[ParallelExecutor] = None):
        if not shards:
            raise ShapeError("ShardedMatrix requires at least one shard")
        self.shards: List[MatrixLike] = [ensure_2d(s) for s in shards]
        widths = {s.shape[1] for s in self.shards}
        if len(widths) != 1:
            raise ShapeError(
                f"all shards must have the same number of columns, got {sorted(widths)}"
            )
        self._n_cols = self.shards[0].shape[1]
        self._n_rows = sum(s.shape[0] for s in self.shards)
        bounds, start = [], 0
        for shard in self.shards:
            bounds.append((start, start + shard.shape[0]))
            start += shard.shape[0]
        self.bounds: List[Tuple[int, int]] = bounds
        self.executor = executor if executor is not None else ParallelExecutor(
            pool, default_max_workers=len(self.shards)
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_matrix(cls, matrix: MatrixLike, n_shards: int, pool: PoolSpec = None
                    ) -> "ShardedMatrix":
        """Partition an in-memory matrix into *n_shards* balanced row shards."""
        matrix = ensure_2d(matrix)
        with obs.span("shard.from_matrix", n_shards=n_shards,
                      n_rows=matrix.shape[0]):
            sharded = cls(_split_rows(matrix, shard_bounds(matrix.shape[0],
                                                           n_shards)),
                          pool=pool)
        _SHARD_BUILDS.labels(kind="matrix").inc()
        return sharded

    def _sibling(self, shards: Sequence[MatrixLike]) -> "ShardedMatrix":
        """A result matrix sharing this one's executor (and therefore pool)."""
        return ShardedMatrix(shards, executor=self.executor)

    # -- basic properties ----------------------------------------------------

    @property
    def shape(self) -> tuple:
        return (self._n_rows, self._n_cols)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "TransposedShardedView":
        return TransposedShardedView(self)

    def to_matrix(self) -> MatrixLike:
        if all(is_sparse(s) for s in self.shards):
            return la_ops.vstack(self.shards)
        return np.vstack([to_dense(s) for s in self.shards])

    def to_dense(self) -> np.ndarray:
        return to_dense(self.to_matrix())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedMatrix(shape={self.shape}, shards={self.num_shards}, "
                f"pool={self.executor.pool.name})")

    # -- aggregations --------------------------------------------------------

    def rowsums(self) -> np.ndarray:
        return np.vstack(self.executor.map(_shard_rowsums, self.shards))

    def colsums(self) -> np.ndarray:
        return _sum_partials(self.executor.map(_shard_colsums, self.shards))

    def total_sum(self) -> float:
        return float(sum(self.executor.map(_shard_total_sum, self.shards)))

    def sum(self, axis: Optional[int] = None):
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- products ------------------------------------------------------------

    def matmul(self, other: MatrixLike) -> "ShardedMatrix":
        """Left multiplication ``self @ other``; the result stays sharded."""
        other = ensure_2d(other)
        if other.shape[0] != self._n_cols:
            raise ShapeError(f"matmul: {self.shape} @ {other.shape}")
        parts = self.executor.map(_shard_matmul, [(s, other) for s in self.shards])
        return self._sibling(parts)

    def rmatmul(self, other: MatrixLike) -> MatrixLike:
        """Right multiplication ``other @ self`` as an in-memory matrix."""
        other = ensure_2d(other)
        if other.shape[1] != self._n_rows:
            raise ShapeError(f"rmatmul: {other.shape} @ {self.shape}")
        slices = _split_cols(other, self.bounds)
        parts = self.executor.map(_shard_rmatmul, list(zip(slices, self.shards)))
        return _sum_partials(parts)

    def transpose_matmul(self, other) -> np.ndarray:
        """Compute ``self.T @ other`` (with *other* row-aligned to ``self``).

        *other* may itself be sharded -- the result of ``self @ w`` feeding
        straight back into the gradient product ``self.T @ p``.
        """
        if is_matrix_like(other) or not hasattr(other, "shape"):
            other = ensure_2d(other)  # incl. array-likes such as nested lists
        if other.shape[0] != self._n_rows:
            raise ShapeError(f"transpose_matmul: {self.shape}.T @ {tuple(other.shape)}")
        slices = _align_row_operand(other, self.bounds)
        parts = self.executor.map(_shard_transpose_matmul, list(zip(self.shards, slices)))
        return _sum_partials(parts)

    def crossprod(self, method: Optional[str] = None) -> np.ndarray:
        """Gram matrix ``self.T @ self`` as a sum of per-shard Gram matrices.

        *method* is accepted for signature compatibility with the normalized
        matrices (callers like ``LinearRegressionNE(crossprod_method=...)``
        pass it to whatever operand they hold) and ignored: a plain matrix
        has no naive/efficient rewrite distinction.
        """
        parts = self.executor.map(_shard_crossprod, [(s, None) for s in self.shards])
        return _sum_partials([to_dense(p) for p in parts])

    # -- element-wise --------------------------------------------------------

    def scalar_op(self, op: str, scalar: Scalar, reverse: bool = False) -> "ShardedMatrix":
        parts = self.executor.map(
            _shard_scalar_op, [(s, op, float(scalar), reverse) for s in self.shards]
        )
        return self._sibling(parts)

    def elementwise(self, fn: Callable[[np.ndarray], np.ndarray]) -> "ShardedMatrix":
        parts = self.executor.map(_shard_elementwise_fn, [(s, fn) for s in self.shards])
        return self._sibling(parts)

    def _elementwise_matrix(self, other: MatrixLike, op: str, reverse: bool) -> "ShardedMatrix":
        other = ensure_2d(other)
        if tuple(other.shape) != self.shape:
            raise ShapeError(
                f"element-wise op: shape mismatch {self.shape} vs {tuple(other.shape)}"
            )
        slices = _split_rows(other, self.bounds)
        parts = self.executor.map(
            _shard_elementwise_matrix,
            [(s, o, op, reverse) for s, o in zip(self.shards, slices)],
        )
        return self._sibling(parts)

    def _binary(self, op: str, other, reverse: bool):
        if _is_scalar(other):
            return self.scalar_op(op, other, reverse=reverse)
        if is_matrix_like(other):
            return self._elementwise_matrix(other, op, reverse=reverse)
        return NotImplemented

    # -- Python operator protocol --------------------------------------------

    def __matmul__(self, other: MatrixLike) -> "ShardedMatrix":
        return self.matmul(other)

    def __rmatmul__(self, other: MatrixLike) -> MatrixLike:
        return self.rmatmul(other)

    def __mul__(self, other):
        return self._binary("*", other, reverse=False)

    def __rmul__(self, other):
        return self._binary("*", other, reverse=True)

    def __add__(self, other):
        return self._binary("+", other, reverse=False)

    def __radd__(self, other):
        return self._binary("+", other, reverse=True)

    def __sub__(self, other):
        return self._binary("-", other, reverse=False)

    def __rsub__(self, other):
        return self._binary("-", other, reverse=True)

    def __truediv__(self, other):
        return self._binary("/", other, reverse=False)

    def __rtruediv__(self, other):
        return self._binary("/", other, reverse=True)

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self.scalar_op("**", exponent)
        return NotImplemented

    def __neg__(self):
        return self.scalar_op("*", -1.0)

    # -- lazy / iteration ----------------------------------------------------

    def lazy(self, cache=None):
        """Lazy expression leaf over this matrix (see ``NormalizedMatrix.lazy``)."""
        from repro.core.lazy import lazy_view

        return lazy_view(self, cache=cache)

    def __iter__(self) -> Iterable[MatrixLike]:
        return iter(self.shards)


class ShardedNormalizedMatrix:
    """Row shards of a normalized matrix, fanned out over a worker pool.

    Built by ``NormalizedMatrix.shard(n_shards, pool=...)`` or
    ``MNNormalizedMatrix.shard(...)``: each piece is a row slice of the
    logical join output -- the entity and indicator matrices are sliced, the
    attribute matrices are shared by reference -- and is itself a normalized
    matrix, so every per-shard operator executes through the factorized
    rewrite rules of :mod:`repro.core.rewrite` unchanged.  This wrapper only
    decides how to fan out and how to reduce:

    ==================  =========================================
    operator            reduction over per-shard partials
    ==================  =========================================
    ``T @ X`` (LMM)     concatenate rows (stays sharded)
    ``X @ T`` (RMM)     sum of ``X_i @ T_i``
    ``T^T @ Y``         sum of ``T_i^T @ Y_i``
    ``crossprod(T)``    sum of ``crossprod(T_i)``
    ``rowSums``         concatenate; ``colSums``/``sum``: sum
    scalar ops, ``f(T)``  per-shard, closed (stays sharded+normalized)
    ``crossprod(T^T)``  block grid of ``T_i T_j^T`` pair products
    ==================  =========================================

    Transposition flips a flag, exactly like the eager classes, and the
    transposed operators are routed through the identities of Appendix A so
    the pieces themselves always stay untransposed.
    """

    __array_ufunc__ = None
    # Above plain matrices and NormalizedMatrix (1000), below LazyExpr (2000),
    # so mixed expressions resolve to the sharded overloads.
    __array_priority__ = 1500

    def __init__(self, pieces: Sequence, transposed: bool = False, pool: PoolSpec = None,
                 executor: Optional[ParallelExecutor] = None):
        if not pieces:
            raise ShapeError("ShardedNormalizedMatrix requires at least one piece")
        widths = {p.shape[1] for p in pieces}
        if len(widths) != 1:
            raise ShapeError(
                f"all pieces must have the same number of columns, got {sorted(widths)}"
            )
        if any(getattr(p, "transposed", False) for p in pieces):
            raise ShapeError("pieces must be untransposed; use the wrapper's transposed flag")
        self.pieces: List = list(pieces)
        self.transposed = bool(transposed)
        bounds, start = [], 0
        for piece in self.pieces:
            bounds.append((start, start + piece.shape[0]))
            start += piece.shape[0]
        self.bounds: List[Tuple[int, int]] = bounds
        self.executor = executor if executor is not None else ParallelExecutor(
            pool, default_max_workers=len(self.pieces)
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_normalized(cls, source, n_shards: int, pool: PoolSpec = None
                        ) -> "ShardedNormalizedMatrix":
        """Shard *source* (a PK-FK or M:N normalized matrix) into row pieces.

        Row shards of the logical ``T`` slice the entity and indicator
        matrices; the attribute matrices are shared, not copied.  Sharding a
        transposed matrix shards the rows of the *untransposed* ``T`` and
        carries the flag on the wrapper.
        """
        plain = source.T if source.transposed else source
        with obs.span("shard.from_normalized", n_shards=n_shards,
                      n_rows=plain.shape[0]):
            bounds = shard_bounds(plain.shape[0], n_shards)
            pieces = [_slice_piece(plain, start, stop) for start, stop in bounds]
            sharded = cls(pieces, transposed=source.transposed, pool=pool)
        _SHARD_BUILDS.labels(kind="normalized").inc()
        return sharded

    def _sibling_pieces(self, pieces: Sequence) -> "ShardedNormalizedMatrix":
        return ShardedNormalizedMatrix(pieces, transposed=self.transposed,
                                       executor=self.executor)

    def _sharded_result(self, parts: Sequence[MatrixLike]) -> ShardedMatrix:
        return ShardedMatrix(parts, executor=self.executor)

    # -- shape and metadata --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.pieces)

    @property
    def logical_rows(self) -> int:
        return self.bounds[-1][1]

    @property
    def logical_cols(self) -> int:
        return self.pieces[0].shape[1]

    @property
    def shape(self) -> tuple:
        if self.transposed:
            return (self.logical_cols, self.logical_rows)
        return (self.logical_rows, self.logical_cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "ShardedNormalizedMatrix":
        return ShardedNormalizedMatrix(self.pieces, transposed=not self.transposed,
                                       executor=self.executor)

    def transpose(self) -> "ShardedNormalizedMatrix":
        return self.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedNormalizedMatrix(shape={self.shape}, shards={self.num_shards}, "
                f"pool={self.executor.pool.name}, transposed={self.transposed})")

    # -- materialization ------------------------------------------------------

    def materialize(self) -> MatrixLike:
        parts = self.executor.map(_shard_materialize, self.pieces)
        matrix = la_ops.vstack(parts)
        return matrix.T if self.transposed else matrix

    def to_dense(self) -> np.ndarray:
        return to_dense(self.materialize())

    # -- element-wise scalar operators ----------------------------------------

    def _scalar_result(self, op: str, scalar: Scalar, reverse: bool
                       ) -> "ShardedNormalizedMatrix":
        pieces = self.executor.map(
            _shard_scalar_op, [(p, op, float(scalar), reverse) for p in self.pieces]
        )
        return self._sibling_pieces(pieces)

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "ShardedNormalizedMatrix":
        """Element-wise scalar function ``f(T)``, applied shard-wise (closed)."""
        pieces = self.executor.map(_shard_elementwise_fn, [(p, fn) for p in self.pieces])
        return self._sibling_pieces(pieces)

    def exp(self) -> "ShardedNormalizedMatrix":
        return self.apply(np.exp)

    def log(self) -> "ShardedNormalizedMatrix":
        return self.apply(np.log)

    def sqrt(self) -> "ShardedNormalizedMatrix":
        return self.apply(np.sqrt)

    def _elementwise_matrix_op(self, other: MatrixLike, op: str, reverse: bool) -> MatrixLike:
        """Non-factorizable element-wise matrix arithmetic (Section 3.3.7).

        Each shard materializes its slice and applies the operator; the
        transposed case reuses the untransposed path on ``other^T`` via
        ``(T^T op X) = (T op X^T)^T`` and returns a plain matrix.
        """
        other = ensure_2d(other)
        if tuple(other.shape) != self.shape:
            raise ShapeError(
                f"element-wise op: shape mismatch {self.shape} vs {tuple(other.shape)}"
            )
        if self.transposed:
            untransposed = self._plain()._elementwise_matrix_op(other.T, op, reverse)
            return to_dense(untransposed.to_matrix()).T
        slices = _split_rows(other, self.bounds)
        parts = self.executor.map(
            _shard_elementwise_matrix,
            [(p, o, op, reverse) for p, o in zip(self.pieces, slices)],
        )
        return self._sharded_result(parts)

    def _plain(self) -> "ShardedNormalizedMatrix":
        """This matrix with the transpose flag cleared (shares the pieces)."""
        if not self.transposed:
            return self
        return ShardedNormalizedMatrix(self.pieces, transposed=False, executor=self.executor)

    def _binary(self, op: str, other, reverse: bool):
        if _is_scalar(other):
            return self._scalar_result(op, other, reverse=reverse)
        if is_matrix_like(other):
            return self._elementwise_matrix_op(other, op, reverse=reverse)
        return NotImplemented

    def __mul__(self, other):
        return self._binary("*", other, reverse=False)

    def __rmul__(self, other):
        return self._binary("*", other, reverse=True)

    def __add__(self, other):
        return self._binary("+", other, reverse=False)

    def __radd__(self, other):
        return self._binary("+", other, reverse=True)

    def __sub__(self, other):
        return self._binary("-", other, reverse=False)

    def __rsub__(self, other):
        return self._binary("-", other, reverse=True)

    def __truediv__(self, other):
        return self._binary("/", other, reverse=False)

    def __rtruediv__(self, other):
        return self._binary("/", other, reverse=True)

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self._scalar_result("**", exponent, reverse=False)
        return NotImplemented

    def __neg__(self):
        return self._scalar_result("*", -1.0, reverse=False)

    # -- aggregations ----------------------------------------------------------

    def rowsums(self) -> np.ndarray:
        if self.transposed:
            return self._colsums_plain().T
        return self._rowsums_plain()

    def colsums(self) -> np.ndarray:
        if self.transposed:
            return self._rowsums_plain().T
        return self._colsums_plain()

    def _rowsums_plain(self) -> np.ndarray:
        return np.vstack(self.executor.map(_shard_rowsums, self.pieces))

    def _colsums_plain(self) -> np.ndarray:
        return _sum_partials(self.executor.map(_shard_colsums, self.pieces))

    def total_sum(self) -> float:
        return float(sum(self.executor.map(_shard_total_sum, self.pieces)))

    def sum(self, axis: Optional[int] = None):
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- multiplication ---------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, ShardedNormalizedMatrix):
            other = other.materialize()
        if not is_matrix_like(other) and not hasattr(other, "shape"):
            return NotImplemented
        other = ensure_2d(other) if is_matrix_like(other) else other
        if self.transposed:
            # T^T X = sum_i T_i^T X_i  (X row-aligned with the shards; X may
            # itself be the sharded result of a previous LMM).
            if other.shape[0] != self.logical_rows:
                raise ShapeError(
                    f"matmul: inner dimensions do not agree {self.shape} @ {tuple(other.shape)}"
                )
            slices = _align_row_operand(other, self.bounds)
            parts = self.executor.map(
                _shard_transpose_matmul, list(zip(self.pieces, slices))
            )
            return _sum_partials(parts)
        if other.shape[0] != self.logical_cols:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {self.shape} @ {tuple(other.shape)}"
            )
        if not is_matrix_like(other) and hasattr(other, "to_matrix"):
            other = other.to_matrix()  # e.g. a (d x m) sharded/chunked operand
        parts = self.executor.map(_shard_matmul, [(p, other) for p in self.pieces])
        return self._sharded_result(parts)

    def __rmatmul__(self, other):
        if not is_matrix_like(other):
            return NotImplemented
        other = ensure_2d(other)
        if self.transposed:
            # X T^T = (T X^T)^T: a sharded LMM whose parts concatenate.
            if other.shape[1] != self.logical_cols:
                raise ShapeError(
                    f"matmul: inner dimensions do not agree {tuple(other.shape)} @ {self.shape}"
                )
            other_t = to_dense(other).T
            parts = self.executor.map(_shard_matmul, [(p, other_t) for p in self.pieces])
            return to_dense(la_ops.vstack([to_dense(p) for p in parts])).T
        if other.shape[1] != self.logical_rows:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {tuple(other.shape)} @ {self.shape}"
            )
        slices = _split_cols(other, self.bounds)
        parts = self.executor.map(_shard_rmatmul, list(zip(slices, self.pieces)))
        return _sum_partials(parts)

    def dot(self, other) -> MatrixLike:
        return self.__matmul__(other)

    # -- cross-product and inversion ---------------------------------------------

    def crossprod(self, method: Optional[str] = None) -> np.ndarray:
        """``crossprod(T) = T^T T`` as a sum of factorized per-shard Gram matrices.

        With the transpose flag set the result is ``T T^T``, assembled as a
        block grid of pair products ``T_i T_j^T`` (each pair product runs
        through the normalized double-multiply rewrites where available).
        """
        if self.transposed:
            # The grid is symmetric (block (j, i) = block (i, j)^T), so only
            # the upper triangle's pair products are dispatched to the pool --
            # k(k+1)/2 instead of k^2 -- and the mirror blocks are transposes.
            k = self.num_shards
            index_pairs = [(i, j) for i in range(k) for j in range(i, k)]
            blocks = self.executor.map(
                _shard_pair_outer,
                [(self.pieces[i], self.pieces[j]) for i, j in index_pairs],
            )
            grid: List[List] = [[None] * k for _ in range(k)]
            for (i, j), block in zip(index_pairs, blocks):
                grid[i][j] = block
                if i != j:
                    grid[j][i] = block.T
            return la_ops.block_grid(grid)
        parts = self.executor.map(_shard_crossprod, [(p, method) for p in self.pieces])
        return _sum_partials([to_dense(p) for p in parts])

    def gram(self) -> np.ndarray:
        return self.crossprod()

    def ginv(self) -> np.ndarray:
        """Pseudo-inverse via the exact identity ``T^+ = (T^T T)^+ T^T``.

        ``(T^T T)^+`` is a small ``d x d`` pseudo-inverse of the (parallel,
        factorized) cross-product, and the trailing product is a sharded LMM:
        ``(T^T T)^+ T^T = (T (T^T T)^+)^T`` because the Gram pseudo-inverse is
        symmetric.  ``ginv(T^T) = ginv(T)^T`` handles the transposed flag.
        """
        plain = self._plain()
        gram_inv = la_ops.ginv(plain.crossprod())
        plain_ginv = to_dense((plain @ gram_inv).to_matrix()).T
        return plain_ginv if not self.transposed else plain_ginv.T

    def solve(self, rhs: MatrixLike, ridge: float = 0.0) -> np.ndarray:
        """Least-squares solve via the factorized, sharded normal equations."""
        rhs = ensure_2d(rhs)
        if rhs.shape[0] != self.shape[0]:
            raise ShapeError(
                f"solve: right-hand side has {rhs.shape[0]} rows but the matrix has {self.shape[0]}"
            )
        gram = self.crossprod()
        # With the transpose flag set, self.T @ rhs is a sharded LMM whose
        # result stays sharded; solve_regularized needs a plain matrix.
        projected = generic.to_dense_result(self.T @ rhs)
        return la_ops.solve_regularized(gram, projected, ridge=ridge)

    # -- lazy evaluation -----------------------------------------------------------

    def lazy(self, cache=None):
        """Lazy expression leaf over this sharded matrix.

        The lazy evaluator executes operator nodes through the operand's own
        overloads, so graphs over a sharded leaf run shard-parallel, and the
        attached :class:`~repro.core.lazy.cache.FactorizedCache` memoizes
        join-invariant nodes exactly as for the eager normalized matrices --
        memoization and parallel execution compose.
        """
        from repro.core.lazy import lazy_view

        return lazy_view(self, cache=cache)

    # -- equality helpers -----------------------------------------------------------

    def equals_materialized(self, other: MatrixLike, rtol: float = 1e-9, atol: float = 1e-9
                            ) -> bool:
        mine = self.to_dense()
        theirs = to_dense(ensure_2d(other))
        if mine.shape != theirs.shape:
            return False
        return bool(np.allclose(mine, theirs, rtol=rtol, atol=atol))


def _slice_piece(plain, start: int, stop: int):
    """Row slice ``[start, stop)`` of an untransposed normalized matrix."""
    from repro.core.mn_matrix import MNNormalizedMatrix
    from repro.core.normalized_matrix import NormalizedMatrix

    if isinstance(plain, NormalizedMatrix):
        entity = plain.entity[start:stop, :] if plain.entity is not None else None
        indicators = [k[start:stop, :] for k in plain.indicators]
        return NormalizedMatrix(entity, indicators, plain.attributes, transposed=False,
                                validate=False, crossprod_method=plain.crossprod_method)
    if isinstance(plain, MNNormalizedMatrix):
        indicators = [i[start:stop, :] for i in plain.indicators]
        return MNNormalizedMatrix(indicators, plain.attributes, transposed=False,
                                  validate=False, crossprod_method=plain.crossprod_method)
    raise TypeError(f"cannot shard operands of type {type(plain).__name__}")
