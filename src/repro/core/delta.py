"""Change capture for incremental maintenance: row-level attribute deltas.

A :class:`MatrixDelta` describes one batch of row-level changes to an
attribute (or M:N component) table's feature matrix ``R_k``: which rows
changed, their values before and after, and the monotonic version the change
produces.  It is the currency of the delta/IVM layer -- captured by
:meth:`repro.relational.table.Table.upsert_rows` (or built directly from two
matrix states), consumed by

* :meth:`NormalizedMatrix.apply_delta` / :meth:`MNNormalizedMatrix.apply_delta`
  -- producing the successor matrix and patching the attached lazy
  :class:`~repro.core.lazy.cache.FactorizedCache` in place;
* :meth:`repro.serve.scorer.FactorizedScorer.apply_delta` -- patching only
  the changed rows of the table's partial-score matrix before the atomic
  snapshot swap.

Deletes are **tombstones**: a delete is an upsert to all-zero feature values,
which keeps row numbering (and therefore every indicator matrix and cached
position index) valid.  Physical deletes renumber rows and are inherently
non-patchable -- consumers must rebuild; see ``docs/incremental.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.rewrite import delta as delta_rules
from repro.exceptions import DeltaError
from repro.la.types import MatrixLike, ensure_2d, is_sparse, to_dense


@dataclass(frozen=True)
class MatrixDelta:
    """One batch of row-level changes to a single attribute matrix.

    Attributes
    ----------
    rows:
        Sorted, unique row indices into ``R_k`` (``(b,)`` int64).
    old / new:
        The ``(b, d_k)`` dense row values before and after the change.
        Inserted rows (``rows >= num_rows``) have all-zero ``old``; tombstone
        deletes have all-zero ``new``.
    num_rows:
        Row count of the table the delta applies to.  Indices at or beyond
        it are *appends* (only the serving layer, whose partials may grow,
        accepts those; in-place matrix patching requires ``rows < num_rows``).
    version:
        The monotonic version of the table **after** this delta.
    """

    rows: np.ndarray
    old: np.ndarray
    new: np.ndarray
    num_rows: int
    version: int = 1

    def __post_init__(self):
        rows = np.asarray(self.rows, dtype=np.int64).ravel()
        old = np.asarray(to_dense(ensure_2d(self.old)), dtype=np.float64)
        new = np.asarray(to_dense(ensure_2d(self.new)), dtype=np.float64)
        if old.shape != new.shape:
            raise DeltaError(f"delta old {old.shape} and new {new.shape} shapes differ")
        if rows.shape[0] != new.shape[0]:
            raise DeltaError(
                f"delta has {rows.shape[0]} row indices but {new.shape[0]} value rows"
            )
        if rows.size:
            if rows.min() < 0:
                raise DeltaError("delta row indices must be non-negative")
            if np.any(np.diff(rows) <= 0):
                order = np.argsort(rows, kind="stable")
                rows = rows[order]
                old, new = old[order], new[order]
                if np.any(np.diff(rows) == 0):
                    raise DeltaError("delta row indices must be unique")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "old", old)
        object.__setattr__(self, "new", new)
        object.__setattr__(self, "num_rows", int(self.num_rows))

    # -- derived quantities ---------------------------------------------------

    @property
    def num_changed(self) -> int:
        """Number of changed rows ``b``."""
        return int(self.rows.shape[0])

    @property
    def width(self) -> int:
        """Feature count ``d_k`` of the target table."""
        return int(self.new.shape[1])

    @property
    def values(self) -> np.ndarray:
        """The additive change ``Δ = new - old``."""
        return self.new - self.old

    @property
    def delta_fraction(self) -> float:
        """``b / |R_k|`` -- the knob the patch-vs-recompute cost rule reads."""
        if self.num_rows <= 0:
            return 1.0
        return self.num_changed / self.num_rows

    @property
    def grows(self) -> bool:
        """Whether any index appends a row beyond ``num_rows``."""
        return bool(self.rows.size) and int(self.rows.max()) >= self.num_rows

    @property
    def num_rows_after(self) -> int:
        """Row count after applying (``num_rows`` unless the delta appends)."""
        if not self.rows.size:
            return self.num_rows
        return max(self.num_rows, int(self.rows.max()) + 1)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_matrices(cls, old_matrix: MatrixLike, new_matrix: MatrixLike,
                      version: int = 1, atol: float = 0.0) -> "MatrixDelta":
        """Capture the row delta between two equal-shaped matrix states."""
        old_dense = np.asarray(to_dense(ensure_2d(old_matrix)), dtype=np.float64)
        new_dense = np.asarray(to_dense(ensure_2d(new_matrix)), dtype=np.float64)
        if old_dense.shape != new_dense.shape:
            raise DeltaError(
                f"cannot diff matrices of shapes {old_dense.shape} and {new_dense.shape}; "
                "row-count changes need an explicit append delta"
            )
        changed = ~np.all(np.isclose(old_dense, new_dense, rtol=0.0, atol=atol), axis=1)
        rows = np.flatnonzero(changed)
        return cls(rows=rows, old=old_dense[rows], new=new_dense[rows],
                   num_rows=old_dense.shape[0], version=version)

    @classmethod
    def upsert(cls, rows, new_values, base_matrix: MatrixLike,
               version: int = 1) -> "MatrixDelta":
        """Capture an upsert of *new_values* at *rows* against *base_matrix*."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        new_values = np.asarray(to_dense(ensure_2d(new_values)), dtype=np.float64)
        base = ensure_2d(base_matrix)
        n_rows = base.shape[0]
        old = np.zeros_like(new_values)
        inside = rows < n_rows
        if np.any(inside):
            existing = base[rows[inside], :]
            old[inside] = np.asarray(to_dense(existing), dtype=np.float64)
        return cls(rows=rows, old=old, new=new_values, num_rows=n_rows, version=version)

    @classmethod
    def tombstone(cls, rows, base_matrix: MatrixLike, version: int = 1) -> "MatrixDelta":
        """Capture a delete-as-tombstone: the rows' features drop to zero."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        base = ensure_2d(base_matrix)
        old = np.asarray(to_dense(base[rows, :]), dtype=np.float64)
        return cls(rows=rows, old=old, new=np.zeros_like(old),
                   num_rows=base.shape[0], version=version)

    # -- validation against a concrete matrix ---------------------------------

    def check_against(self, attribute: MatrixLike, allow_growth: bool = False) -> None:
        """Verify this delta was captured against *attribute*'s current state.

        Guards the algebra: patching with a delta whose ``old`` values do not
        match the matrix silently corrupts every downstream term, so the
        mismatch is raised here as :class:`DeltaError` instead.
        """
        attribute = ensure_2d(attribute)
        if self.width != attribute.shape[1]:
            raise DeltaError(
                f"delta has {self.width} columns but the table has {attribute.shape[1]}"
            )
        if self.num_rows != attribute.shape[0]:
            raise DeltaError(
                f"delta was captured at {self.num_rows} rows but the table has "
                f"{attribute.shape[0]}"
            )
        if self.grows and not allow_growth:
            raise DeltaError(
                f"delta appends rows beyond {self.num_rows}; only the serving "
                "partials support growth (rebuild the normalized matrix instead)"
            )
        inside = self.rows[self.rows < self.num_rows]
        if inside.size:
            current = np.asarray(to_dense(attribute[inside, :]), dtype=np.float64)
            # rows are sorted, so in-range indices are a prefix of old.
            expected = self.old[: inside.size]
            if not np.allclose(current, expected, rtol=0.0, atol=0.0, equal_nan=True):
                raise DeltaError(
                    "delta 'old' values disagree with the matrix being patched; "
                    "the change was captured against a different version"
                )

    def apply_to(self, attribute: MatrixLike) -> MatrixLike:
        """The post-delta attribute matrix (dense stays dense, sparse sparse)."""
        self.check_against(attribute)
        if is_sparse(attribute):
            patched = attribute.tolil(copy=True)
            patched[self.rows, :] = self.new
            return patched.tocsr()
        patched = np.array(np.asarray(attribute), dtype=np.float64)
        patched[self.rows, :] = self.new
        patched.setflags(write=False)
        return patched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatrixDelta(rows={self.num_changed}/{self.num_rows}, width={self.width}, "
            f"fraction={self.delta_fraction:.4f}, version={self.version})"
        )


def migrate_lazy_state(predecessor, successor, table_index: int,
                       delta: "MatrixDelta", policy=None):
    """Move the lazy identity and cache from *predecessor* to *successor*.

    The successor inherits the predecessor's ``_lazy_token``, so the
    structural cache keys of expressions built over it keep matching, and its
    :class:`~repro.core.lazy.cache.FactorizedCache` after the cache has
    absorbed the delta (each entry patched in place or invalidated, per the
    policy).  The predecessor is stripped of both: entries patched against
    post-delta state must never be served to expressions over the pre-delta
    matrix.  Also bumps the successor's monotonic ``version``.
    """
    successor.version = getattr(predecessor, "version", 0) + 1
    token = predecessor.__dict__.pop("_lazy_token", None)
    cache = predecessor.__dict__.pop("_lazy_cache", None)
    if token is not None:
        successor._lazy_token = token
    if cache is not None:
        successor._lazy_cache = cache
        if token is not None:
            cache.apply_delta(successor, table_index, delta, policy=policy)
    return successor


# ---------------------------------------------------------------------------
# Cache-entry patching: one rule per recognized join-invariant term
# ---------------------------------------------------------------------------

#: Kinds of cached terms the delta rules can patch in place.
PATCHABLE_KINDS = frozenset({
    "crossprod", "lmm", "tlmm", "rowsums", "colsums", "total_sum",
})


@dataclass(frozen=True)
class CachePatchRule:
    """How to delta-patch one memoized join-invariant cache entry.

    Captured by the lazy evaluator when it stores a recognized node shape
    (``crossprod(T)``, ``T @ X``, ``T^T @ Y``, the aggregations) built
    directly over a normalized-matrix leaf.  *token* pins the rule to that
    leaf's identity so a shared cache never patches another matrix's entry;
    *operand* holds the constant co-operand (``X`` / ``Y``) where one exists.
    """

    kind: str
    token: str
    operand: Optional[object] = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in PATCHABLE_KINDS:
            raise DeltaError(f"no delta patch rule for cached term kind {self.kind!r}")


def _segment_offset(matrix, table_index: int) -> tuple:
    """(offset, width) of table *table_index*'s column segment inside ``T``."""
    entity_width = getattr(matrix, "entity_width", 0)
    widths = [r.shape[1] for r in matrix.attributes]
    offset = entity_width + sum(widths[:table_index])
    return offset, widths[table_index]


def patch_cached_value(rule: CachePatchRule, value, matrix, table_index: int,
                       delta: MatrixDelta):
    """Return the post-delta replacement for one cached term.

    *matrix* is the **successor** normalized matrix (its ``attributes`` are
    post-delta); *value* is the pre-delta cached result.  Dense results come
    back as fresh arrays (cached values are frozen, never mutated in place),
    so in-flight readers of the old entry are unaffected.
    """
    indicator = matrix.indicators[table_index]
    rows, dvalues = delta.rows, delta.values
    offset, width = _segment_offset(matrix, table_index)
    segment = slice(offset, offset + width)

    if rule.kind == "crossprod":
        entity = getattr(matrix, "entity", None)
        return delta_rules.patch_crossprod(
            value, entity, matrix.indicators, matrix.attributes,
            table_index, rows, delta.old, delta.new,
        )
    if rule.kind == "lmm":
        x_block = ensure_2d(rule.operand)[segment, :]
        return value + delta_rules.delta_lmm(indicator, rows, dvalues, x_block)
    if rule.kind == "tlmm":
        patched = np.array(to_dense(value), dtype=np.float64)
        patched[segment, :] += delta_rules.delta_tlmm_block(
            indicator, rows, dvalues, rule.operand
        )
        return patched
    if rule.kind == "rowsums":
        return value + delta_rules.delta_rowsums(indicator, rows, dvalues)
    if rule.kind == "colsums":
        patched = np.array(to_dense(value), dtype=np.float64)
        patched[:, segment] += delta_rules.delta_colsums_block(indicator, rows, dvalues)
        return patched
    if rule.kind == "total_sum":
        return float(value) + delta_rules.delta_total_sum(indicator, rows, dvalues)
    raise DeltaError(f"no delta patch rule for cached term kind {rule.kind!r}")
