"""Factorize-or-materialize decision strategies.

Paper reference: Sections 3.7 and 5.1.  Factorized execution avoids the
computational redundancy introduced by the join, but when the join introduces
little or no redundancy (low tuple ratio and/or low feature ratio) the extra
operator-dispatch overhead of the rewrites can make the factorized version
*slower* -- empirically by less than 2x, but still worth avoiding.

The paper deliberately avoids per-operator cost models (they would tie the
framework to a specific LA backend and machine) and instead uses a simple
conservative disjunctive threshold rule tuned on the synthetic sweeps::

    use the factorized version  unless  tuple_ratio < tau  OR  feature_ratio < rho

with ``tau = 5`` and ``rho = 1``.  This module implements that rule, plus the
:func:`morpheus` convenience factory that applies it when constructing a data
matrix from base tables.

The repo generalizes the paper here: the threshold rule is one *strategy*
among several.  :class:`ThresholdStrategy` wraps the paper rule;
:class:`CostBasedStrategy` delegates to the calibrated planner of
:mod:`repro.core.planner`, which also weighs engines, backends and shard
counts.  :func:`get_strategy` resolves either by name, and :func:`morpheus`
accepts a ``strategy=`` argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.la.types import MatrixLike
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.mn_matrix import MNNormalizedMatrix

#: Default tuple-ratio threshold (paper Section 5.1).
DEFAULT_TUPLE_RATIO_THRESHOLD = 5.0
#: Default feature-ratio threshold (paper Section 5.1).
DEFAULT_FEATURE_RATIO_THRESHOLD = 1.0


@dataclass(frozen=True)
class DecisionRule:
    """Disjunctive threshold rule on tuple ratio and feature ratio.

    ``predict`` returns ``True`` when the factorized version is expected to be
    at least as fast as the materialized one.  The thresholds are conservative
    in the sense described in the paper: the rule may wrongly predict a
    slow-down (forgoing a small win), but rarely predicts a win when there is a
    slow-down.
    """

    tuple_ratio_threshold: float = DEFAULT_TUPLE_RATIO_THRESHOLD
    feature_ratio_threshold: float = DEFAULT_FEATURE_RATIO_THRESHOLD

    def predict(self, tuple_ratio: float, feature_ratio: float) -> bool:
        """Return ``True`` if factorized execution should be used."""
        if tuple_ratio < self.tuple_ratio_threshold:
            return False
        if feature_ratio < self.feature_ratio_threshold:
            return False
        return True

    def explain(self, tuple_ratio: float, feature_ratio: float) -> str:
        """Human-readable explanation of the decision (used in benchmark logs)."""
        decision = self.predict(tuple_ratio, feature_ratio)
        verdict = "factorize" if decision else "materialize"
        return (
            f"tuple_ratio={tuple_ratio:.2f} (threshold {self.tuple_ratio_threshold}), "
            f"feature_ratio={feature_ratio:.2f} (threshold {self.feature_ratio_threshold}) "
            f"-> {verdict}"
        )


def should_factorize(tuple_ratio: float, feature_ratio: float,
                     rule: Optional[DecisionRule] = None) -> bool:
    """Module-level convenience wrapper around :meth:`DecisionRule.predict`."""
    rule = rule or DecisionRule()
    return rule.predict(tuple_ratio, feature_ratio)


# ---------------------------------------------------------------------------
# Pluggable strategies
# ---------------------------------------------------------------------------

class ExecutionStrategy(abc.ABC):
    """Decides whether a normalized matrix should execute factorized.

    The paper's threshold rule and the repo's cost-based planner implement
    the same tiny interface, so everything that consumes the decision --
    the :func:`morpheus` factory, benchmark reports, the ML ``engine="auto"``
    path -- is agnostic to *how* the decision is made.
    """

    #: registry name (see :func:`get_strategy`)
    name: str = "abstract"

    @abc.abstractmethod
    def should_factorize(self, normalized: NormalizedMatrix) -> bool:
        """True when the factorized execution of *normalized* is predicted to win."""

    @abc.abstractmethod
    def explain(self, normalized: NormalizedMatrix) -> str:
        """Human-readable account of the decision."""


class ThresholdStrategy(ExecutionStrategy):
    """The paper's static two-threshold rule as a strategy (Section 5.1)."""

    name = "threshold"

    def __init__(self, rule: Optional[DecisionRule] = None):
        self.rule = rule or DecisionRule()

    def should_factorize(self, normalized: NormalizedMatrix) -> bool:
        return self.rule.predict(normalized.tuple_ratio, normalized.feature_ratio)

    def explain(self, normalized: NormalizedMatrix) -> str:
        return self.rule.explain(normalized.tuple_ratio, normalized.feature_ratio)


class CostBasedStrategy(ExecutionStrategy):
    """Delegate the layout decision to the calibrated cost-based planner.

    *workload* defaults to the planner's generic single-pass operator mix;
    hand the real workload descriptor in when it is known (the ML estimators
    do) -- iteration counts shift the break-even point substantially.
    """

    name = "cost"

    def __init__(self, planner=None, workload=None):
        # Imported lazily: repro.core.planner imports this module's siblings.
        from repro.core.planner import Planner

        self.planner = planner or Planner()
        self.workload = workload
        self._last_plan = None  # (matrix, plan) of the most recent call

    def plan(self, normalized: NormalizedMatrix):
        # Decide-then-explain is the common calling pattern; memoizing the
        # last plan (matrices are immutable) avoids scoring the whole
        # candidate lattice twice for the same input.
        if self._last_plan is not None and self._last_plan[0] is normalized:
            return self._last_plan[1]
        plan = self.planner.plan(normalized, self.workload)
        self._last_plan = (normalized, plan)
        return plan

    def should_factorize(self, normalized: NormalizedMatrix) -> bool:
        return self.plan(normalized).factorized

    def explain(self, normalized: NormalizedMatrix) -> str:
        return self.plan(normalized).explain()


_STRATEGIES = {
    ThresholdStrategy.name: ThresholdStrategy,
    CostBasedStrategy.name: CostBasedStrategy,
}


def get_strategy(name: Union[str, ExecutionStrategy], **kwargs) -> ExecutionStrategy:
    """Resolve a strategy by name (``"threshold"`` / ``"cost"``) or pass through."""
    if isinstance(name, ExecutionStrategy):
        return name
    key = str(name).lower()
    if key not in _STRATEGIES:
        raise ValueError(
            f"unknown execution strategy {name!r}; expected one of {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[key](**kwargs)


def morpheus(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
             attributes: Sequence[MatrixLike],
             rule: Optional[DecisionRule] = None,
             force_factorized: bool = False,
             strategy: Union[None, str, ExecutionStrategy] = None
             ) -> Union[NormalizedMatrix, MatrixLike]:
    """Build the data matrix the way Morpheus would: factorized if profitable.

    Constructs a :class:`NormalizedMatrix` from the base matrices, consults the
    decision strategy and returns either the normalized matrix (factorized
    execution) or its materialization (standard execution).  ``force_factorized``
    bypasses the decision, which is what the operator-level benchmarks do.
    ``strategy`` selects the decision procedure (default: the paper's
    threshold rule; ``"cost"`` uses the calibrated planner); passing ``rule``
    keeps the historical spelling for custom thresholds.  The two are
    mutually exclusive -- wrap custom thresholds in
    ``ThresholdStrategy(rule)`` and pass that as *strategy* instead.
    """
    normalized = NormalizedMatrix(entity, list(indicators), list(attributes))
    if force_factorized:
        return normalized
    if strategy is None:
        resolved: ExecutionStrategy = ThresholdStrategy(rule)
    elif rule is not None:
        raise ValueError(
            "pass either rule= or strategy=, not both; wrap custom thresholds "
            "in ThresholdStrategy(rule) and pass that as strategy="
        )
    else:
        resolved = get_strategy(strategy)
    if resolved.should_factorize(normalized):
        return normalized
    return normalized.materialize()


def morpheus_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
                redundancy_threshold: float = 1.5,
                force_factorized: bool = False
                ) -> Union[MNNormalizedMatrix, MatrixLike]:
    """M:N analogue of :func:`morpheus`.

    For M:N joins the tuple/feature ratios of the PK-FK rule do not directly
    apply; the natural analogue is the redundancy ratio (materialized size over
    base size), which grows as the join-attribute uniqueness degree shrinks.
    The factorized version is used when the ratio exceeds *redundancy_threshold*.
    """
    normalized = MNNormalizedMatrix(list(indicators), list(attributes))
    if force_factorized or normalized.redundancy_ratio() >= redundancy_threshold:
        return normalized
    return normalized.materialize()
