"""The heuristic decision rule: when should Morpheus factorize?

Paper reference: Sections 3.7 and 5.1.  Factorized execution avoids the
computational redundancy introduced by the join, but when the join introduces
little or no redundancy (low tuple ratio and/or low feature ratio) the extra
operator-dispatch overhead of the rewrites can make the factorized version
*slower* -- empirically by less than 2x, but still worth avoiding.

The paper deliberately avoids per-operator cost models (they would tie the
framework to a specific LA backend and machine) and instead uses a simple
conservative disjunctive threshold rule tuned on the synthetic sweeps::

    use the factorized version  unless  tuple_ratio < tau  OR  feature_ratio < rho

with ``tau = 5`` and ``rho = 1``.  This module implements that rule, plus the
:func:`morpheus` convenience factory that applies it when constructing a data
matrix from base tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.la.types import MatrixLike
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.mn_matrix import MNNormalizedMatrix

#: Default tuple-ratio threshold (paper Section 5.1).
DEFAULT_TUPLE_RATIO_THRESHOLD = 5.0
#: Default feature-ratio threshold (paper Section 5.1).
DEFAULT_FEATURE_RATIO_THRESHOLD = 1.0


@dataclass(frozen=True)
class DecisionRule:
    """Disjunctive threshold rule on tuple ratio and feature ratio.

    ``predict`` returns ``True`` when the factorized version is expected to be
    at least as fast as the materialized one.  The thresholds are conservative
    in the sense described in the paper: the rule may wrongly predict a
    slow-down (forgoing a small win), but rarely predicts a win when there is a
    slow-down.
    """

    tuple_ratio_threshold: float = DEFAULT_TUPLE_RATIO_THRESHOLD
    feature_ratio_threshold: float = DEFAULT_FEATURE_RATIO_THRESHOLD

    def predict(self, tuple_ratio: float, feature_ratio: float) -> bool:
        """Return ``True`` if factorized execution should be used."""
        if tuple_ratio < self.tuple_ratio_threshold:
            return False
        if feature_ratio < self.feature_ratio_threshold:
            return False
        return True

    def explain(self, tuple_ratio: float, feature_ratio: float) -> str:
        """Human-readable explanation of the decision (used in benchmark logs)."""
        decision = self.predict(tuple_ratio, feature_ratio)
        verdict = "factorize" if decision else "materialize"
        return (
            f"tuple_ratio={tuple_ratio:.2f} (threshold {self.tuple_ratio_threshold}), "
            f"feature_ratio={feature_ratio:.2f} (threshold {self.feature_ratio_threshold}) "
            f"-> {verdict}"
        )


def should_factorize(tuple_ratio: float, feature_ratio: float,
                     rule: Optional[DecisionRule] = None) -> bool:
    """Module-level convenience wrapper around :meth:`DecisionRule.predict`."""
    rule = rule or DecisionRule()
    return rule.predict(tuple_ratio, feature_ratio)


def morpheus(entity: Optional[MatrixLike], indicators: Sequence[MatrixLike],
             attributes: Sequence[MatrixLike],
             rule: Optional[DecisionRule] = None,
             force_factorized: bool = False
             ) -> Union[NormalizedMatrix, MatrixLike]:
    """Build the data matrix the way Morpheus would: factorized if profitable.

    Constructs a :class:`NormalizedMatrix` from the base matrices, consults the
    decision rule and returns either the normalized matrix (factorized
    execution) or its materialization (standard execution).  ``force_factorized``
    bypasses the rule, which is what the operator-level benchmarks do.
    """
    normalized = NormalizedMatrix(entity, list(indicators), list(attributes))
    if force_factorized:
        return normalized
    rule = rule or DecisionRule()
    if rule.predict(normalized.tuple_ratio, normalized.feature_ratio):
        return normalized
    return normalized.materialize()


def morpheus_mn(indicators: Sequence[MatrixLike], attributes: Sequence[MatrixLike],
                redundancy_threshold: float = 1.5,
                force_factorized: bool = False
                ) -> Union[MNNormalizedMatrix, MatrixLike]:
    """M:N analogue of :func:`morpheus`.

    For M:N joins the tuple/feature ratios of the PK-FK rule do not directly
    apply; the natural analogue is the redundancy ratio (materialized size over
    base size), which grows as the join-attribute uniqueness degree shrinks.
    The factorized version is used when the ratio exceeds *redundancy_threshold*.
    """
    normalized = MNNormalizedMatrix(list(indicators), list(attributes))
    if force_factorized or normalized.redundancy_ratio() >= redundancy_threshold:
        return normalized
    return normalized.materialize()
