"""Validation and inspection of indicator matrices.

The normalized matrix is only well-defined when its indicator matrices have
the structure the paper relies on:

* PK-FK indicator ``K`` (Section 3.1): every row has exactly one non-zero,
  every non-zero equals one, and (after the pre-processing of Section 3.1)
  every column has at least one non-zero, so ``nnz(K) == n_S``.
* M:N indicators ``I_S``/``I_R`` (Section 3.6): every row has exactly one
  non-zero equal to one and every column at least one, so
  ``nnz(I) == |T'|``.

These invariants are exactly what the rewrite rules' correctness proofs use,
so the constructors of the normalized-matrix classes validate them eagerly
(validation is linear in ``nnz`` and therefore cheap relative to any LA
operator).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import IndicatorError
from repro.la.chain import ChainedIndicator
from repro.la.types import MatrixLike, to_sparse


@dataclass(frozen=True)
class IndicatorStats:
    """Summary statistics of an indicator matrix."""

    shape: tuple
    nnz: int
    min_rows_per_column: int
    max_rows_per_column: int

    @property
    def average_fanout(self) -> float:
        """Average number of referencing rows per referenced row."""
        if self.shape[1] == 0:
            return 0.0
        return self.nnz / self.shape[1]


def _as_binary_csr(matrix: MatrixLike, context: str) -> sp.csr_matrix:
    csr = to_sparse(matrix, "csr")
    if csr.nnz and not np.all(csr.data == 1.0):
        raise IndicatorError(f"{context}: all stored entries must equal 1")
    return csr


def validate_pk_fk_indicator(matrix: MatrixLike, require_full_columns: bool = True):
    """Validate a PK-FK indicator matrix ``K`` and return it as CSR.

    Checks that every row has exactly one entry equal to one, and (optionally)
    that every column is referenced at least once, which the paper assumes
    after dropping unreferenced attribute tuples.

    A multi-hop :class:`~repro.la.chain.ChainedIndicator` is validated hop by
    hop -- each hop must itself be a valid PK-FK indicator, which makes the
    product one too -- plus the column-coverage check on the (virtual)
    product, and is returned unchanged (still factorized).
    """
    if isinstance(matrix, ChainedIndicator):
        if matrix.transposed:
            raise IndicatorError(
                "PK-FK indicator: a transposed chain is not a row indicator"
            )
        for i, hop in enumerate(matrix.hops):
            try:
                validate_pk_fk_indicator(hop, require_full_columns=False)
            except IndicatorError as exc:
                raise IndicatorError(f"chain hop {i}: {exc}") from None
        if require_full_columns and matrix.shape[1]:
            # Column coverage of the product via composed codes -- O(rows),
            # no need to materialize the collapsed chain.
            col_counts = np.bincount(indicator_codes(matrix),
                                     minlength=matrix.shape[1])
            if np.any(col_counts == 0):
                bad = int(np.argmax(col_counts == 0))
                raise IndicatorError(
                    f"PK-FK indicator chain: column {bad} is never reached through "
                    "the hops; drop unreferenced attribute rows before building "
                    "the normalized matrix"
                )
        return matrix
    csr = _as_binary_csr(matrix, "PK-FK indicator")
    row_counts = np.diff(csr.indptr)
    if csr.shape[0] and not np.all(row_counts == 1):
        bad = int(np.argmax(row_counts != 1))
        raise IndicatorError(
            f"PK-FK indicator: row {bad} has {int(row_counts[bad])} non-zeros, expected exactly 1"
        )
    if require_full_columns and csr.shape[1]:
        col_counts = np.asarray(csr.sum(axis=0)).ravel()
        if np.any(col_counts == 0):
            bad = int(np.argmax(col_counts == 0))
            raise IndicatorError(
                f"PK-FK indicator: column {bad} is never referenced; "
                "drop unreferenced attribute rows before building the normalized matrix"
            )
    return csr


def validate_mn_indicator(matrix: MatrixLike, require_full_columns: bool = True) -> sp.csr_matrix:
    """Validate an M:N indicator matrix (``I_S`` or ``I_R``) and return it as CSR.

    Structurally the per-row requirement is the same as for PK-FK indicators
    (each output row of the join comes from exactly one source row); the
    difference is semantic -- the number of rows equals the join output size
    rather than the entity-table size.
    """
    csr = _as_binary_csr(matrix, "M:N indicator")
    row_counts = np.diff(csr.indptr)
    if csr.shape[0] and not np.all(row_counts == 1):
        bad = int(np.argmax(row_counts != 1))
        raise IndicatorError(
            f"M:N indicator: row {bad} has {int(row_counts[bad])} non-zeros, expected exactly 1"
        )
    if require_full_columns and csr.shape[1]:
        col_counts = np.asarray(csr.sum(axis=0)).ravel()
        if np.any(col_counts == 0):
            bad = int(np.argmax(col_counts == 0))
            raise IndicatorError(
                f"M:N indicator: column {bad} contributes no join output rows; "
                "drop non-contributing base rows before building the normalized matrix"
            )
    return csr


# Memoized codes per indicator object: the scorer, the zone-map index and the
# fused kernels all work in code space, so each indicator's codes are computed
# once and shared.  Keyed by id() with a weakref liveness check (id reuse after
# garbage collection must not serve stale codes); entries evict themselves when
# the indicator dies.  Cached arrays are read-only so sharing is safe.
_CODES_CACHE: Dict[int, Tuple[weakref.ref, np.ndarray]] = {}


def reset_codes_cache() -> None:
    """Drop all memoized indicator codes (test isolation hook)."""
    _CODES_CACHE.clear()


def _compute_codes(matrix: MatrixLike) -> np.ndarray:
    if isinstance(matrix, ChainedIndicator) and not matrix.transposed:
        codes = indicator_codes(matrix.hops[0])
        for hop in matrix.hops[1:]:
            codes = indicator_codes(hop)[codes]
        return codes
    csr = to_sparse(matrix, "csr")
    row_counts = np.diff(csr.indptr)
    if csr.shape[0] and not np.all(row_counts == 1):
        bad = int(np.argmax(row_counts != 1))
        raise IndicatorError(
            f"indicator: row {bad} has {int(row_counts[bad])} non-zeros, expected exactly 1"
        )
    return csr.indices.astype(np.int64)


def indicator_codes(matrix: MatrixLike) -> np.ndarray:
    """Recover the per-row key codes of an indicator matrix.

    For a valid PK-FK or M:N indicator (exactly one non-zero per row) the
    code of row ``i`` is the column holding that non-zero -- i.e. the
    attribute-table row the join routes row ``i`` to.  This is the inverse of
    :func:`repro.la.ops.indicator_from_labels` and what the serving subsystem
    and the fused kernel layer gather with.  Chained indicators compose hop
    codes (``c = c2[c1]``) without materializing the product.

    Results are memoized per indicator object and returned read-only; copy
    before mutating.
    """
    key = id(matrix)
    entry = _CODES_CACHE.get(key)
    if entry is not None:
        ref, codes = entry
        if ref() is matrix:
            return codes
        del _CODES_CACHE[key]
    codes = np.ascontiguousarray(_compute_codes(matrix), dtype=np.int64)
    codes.setflags(write=False)
    try:
        ref = weakref.ref(matrix, lambda _r, _key=key: _CODES_CACHE.pop(_key, None))
    except TypeError:
        return codes
    _CODES_CACHE[key] = (ref, codes)
    return codes


def indicator_stats(matrix: MatrixLike) -> IndicatorStats:
    """Compute summary statistics (shape, nnz, per-column fan-out range)."""
    csr = to_sparse(matrix, "csr")
    if csr.shape[1] == 0:
        return IndicatorStats(csr.shape, int(csr.nnz), 0, 0)
    col_counts = np.asarray(csr.sum(axis=0)).ravel()
    return IndicatorStats(
        shape=csr.shape,
        nnz=int(csr.nnz),
        min_rows_per_column=int(col_counts.min()),
        max_rows_per_column=int(col_counts.max()),
    )
