"""Feature encoding: turning table columns into (sparse) feature matrices.

The paper's real datasets "are represented as sparse feature matrices to
handle nominal features" (Section 5, Table 6).  This module provides the
one-hot encoder that performs that conversion, plus a convenience function
that turns a whole :class:`~repro.relational.table.Table` into a
:class:`FeatureMatrix` according to its schema (numeric columns pass through,
categorical columns are one-hot encoded, key/target columns are skipped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SchemaError
from repro.la.types import MatrixLike
from repro.relational.schema import ColumnType
from repro.relational.table import Table


@dataclass
class FeatureMatrix:
    """A feature matrix plus the names of the columns it was built from."""

    matrix: MatrixLike
    feature_names: List[str]

    @property
    def shape(self) -> tuple:
        return self.matrix.shape

    @property
    def num_features(self) -> int:
        return self.matrix.shape[1]


#: The single category NaN/None values canonicalize to.  A plain string so it
#: sorts, hashes and renders in feature names like any other category.
MISSING_CATEGORY = "<missing>"


def _is_missing(value: object) -> bool:
    """True for the values treated as "missing": None and float NaN."""
    if value is None:
        return True
    return isinstance(value, float) and np.isnan(value)


class OneHotEncoder:
    """One-hot encode a single categorical column into a sparse 0/1 matrix.

    The encoder learns the category vocabulary with :meth:`fit` and produces a
    CSR matrix with one column per learned category in :meth:`transform`.
    Unknown categories at transform time either raise (default) or map to an
    all-zero row when ``handle_unknown='ignore'``.

    Missing values (``None`` and float NaN) are canonicalized to the single
    :data:`MISSING_CATEGORY` before anything else (``missing='encode'``, the
    default) -- without this, ``NaN != NaN`` makes ``fit`` keep one category
    per NaN occurrence and ``transform`` then fails on the exact data it was
    fitted on.  ``missing='error'`` rejects missing values with a
    :class:`SchemaError` instead.
    """

    def __init__(self, handle_unknown: str = "error", missing: str = "encode"):
        if handle_unknown not in ("error", "ignore"):
            raise ValueError("handle_unknown must be 'error' or 'ignore'")
        if missing not in ("encode", "error"):
            raise ValueError("missing must be 'encode' or 'error'")
        self.handle_unknown = handle_unknown
        self.missing = missing
        self.categories_: Optional[List[object]] = None
        self._index: Dict[object, int] = {}

    def _canonicalize(self, values: Sequence, stage: str) -> List[object]:
        # No np.asarray here: coercing a mixed list like ["x", nan] to a
        # Unicode array would turn NaN into the string "nan" before the
        # missing-value check can see it.
        seq = values.tolist() if isinstance(values, np.ndarray) else list(values)
        out = []
        for i, v in enumerate(seq):
            if _is_missing(v):
                if self.missing == "error":
                    raise SchemaError(
                        f"missing value ({v!r}) at row {i} during {stage}; "
                        "this encoder was configured with missing='error' -- "
                        "impute the column or use missing='encode'"
                    )
                v = MISSING_CATEGORY
            out.append(v)
        return out

    def fit(self, values: Sequence) -> "OneHotEncoder":
        uniques = sorted(set(self._canonicalize(values, "fit")), key=repr)
        self.categories_ = list(uniques)
        self._index = {v: i for i, v in enumerate(self.categories_)}
        return self

    def transform(self, values: Sequence) -> sp.csr_matrix:
        if self.categories_ is None:
            raise SchemaError("OneHotEncoder.transform called before fit")
        values = self._canonicalize(values, "transform")
        rows, cols = [], []
        for i, v in enumerate(values):
            j = self._index.get(v)
            if j is None:
                if self.handle_unknown == "error":
                    raise SchemaError(f"unknown category {v!r} at row {i}")
                continue
            rows.append(i)
            cols.append(j)
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(len(values), len(self.categories_))
        )

    def fit_transform(self, values: Sequence) -> sp.csr_matrix:
        return self.fit(values).transform(values)

    def feature_names(self, column_name: str) -> List[str]:
        if self.categories_ is None:
            raise SchemaError("OneHotEncoder.feature_names called before fit")
        return [f"{column_name}={c}" for c in self.categories_]


def encode_features(table: Table, columns: Optional[Sequence[str]] = None,
                    sparse: bool = True) -> FeatureMatrix:
    """Encode a table's feature columns into a single feature matrix.

    Numeric columns become one feature each; categorical columns are one-hot
    encoded.  The output is sparse CSR when ``sparse=True`` (the default, and
    what the real-data benchmarks use) or dense otherwise.  Key and target
    columns are skipped unless explicitly listed in *columns*.
    """
    if columns is None:
        columns = [c.name for c in table.schema.feature_columns()]
    blocks: List[MatrixLike] = []
    names: List[str] = []
    for name in columns:
        column = table.schema.column(name) if name in table.schema.column_names else None
        values = table.column(name)
        is_numeric = np.issubdtype(values.dtype, np.number)
        treat_as_numeric = is_numeric and (
            column is None or column.ctype in (ColumnType.NUMERIC, ColumnType.TARGET)
        )
        if treat_as_numeric:
            block = values.astype(np.float64).reshape(-1, 1)
            blocks.append(sp.csr_matrix(block) if sparse else block)
            names.append(name)
        else:
            encoder = OneHotEncoder()
            encoded = encoder.fit_transform(values)
            blocks.append(encoded if sparse else np.asarray(encoded.todense()))
            names.extend(encoder.feature_names(name))
    if not blocks:
        empty = sp.csr_matrix((table.num_rows, 0)) if sparse else np.zeros((table.num_rows, 0))
        return FeatureMatrix(empty, [])
    if sparse:
        matrix: MatrixLike = sp.hstack([sp.csr_matrix(b) for b in blocks], format="csr")
    else:
        matrix = np.hstack([np.asarray(b.todense()) if sp.issparse(b) else b for b in blocks])
    return FeatureMatrix(matrix, names)
