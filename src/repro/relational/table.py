"""A small column-oriented table.

:class:`Table` is the unit the relational substrate manipulates: an ordered
set of named columns, each a 1-D NumPy array of equal length, plus an optional
:class:`~repro.relational.schema.TableSchema` describing column roles and key
constraints.  It intentionally supports only the operations the Morpheus
pipeline needs -- projection, selection, row lookup by key, and conversion of
feature columns to matrices -- rather than a general query engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relational.schema import Column, ColumnType, TableSchema


class Table:
    """A named, column-oriented table with equal-length column arrays."""

    def __init__(self, name: str, columns: Mapping[str, Sequence],
                 schema: Optional[TableSchema] = None, version: int = 0):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        #: Monotonic change version; bumped by :meth:`upsert_rows` / :meth:`delete_rows`.
        self.version = int(version)
        self._columns: Dict[str, np.ndarray] = {}
        length = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(f"column {col_name!r} must be one-dimensional")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {col_name!r} has {arr.shape[0]} rows, expected {length}"
                )
            # Stored as read-only views: every cache keyed off this table (key
            # position indexes, lazy-layer memoization, serving partials)
            # assumes column data never changes in place.  Mutations must go
            # through the delta API (upsert_rows / delete_rows), which
            # produces a successor table and a capturable delta instead.
            view = arr.view()
            view.setflags(write=False)
            self._columns[col_name] = view
        self._num_rows = int(length or 0)
        self.schema = schema or self._infer_schema()
        missing = [c for c in self.schema.column_names if c not in self._columns]
        if missing:
            raise SchemaError(f"table {name!r} is missing schema columns {missing}")

    # -- construction helpers -------------------------------------------------

    def _infer_schema(self) -> TableSchema:
        """Build a best-effort schema: numeric dtypes are numeric, rest categorical."""
        cols = []
        for col_name, arr in self._columns.items():
            if np.issubdtype(arr.dtype, np.number):
                cols.append(Column(col_name, ColumnType.NUMERIC))
            else:
                cols.append(Column(col_name, ColumnType.CATEGORICAL))
        return TableSchema(name=self.name, columns=cols)

    @classmethod
    def from_records(cls, name: str, records: Iterable[Mapping],
                     schema: Optional[TableSchema] = None) -> "Table":
        """Build a table from an iterable of row dictionaries."""
        records = list(records)
        if not records:
            raise SchemaError(f"table {name!r}: cannot build from zero records")
        col_names = list(records[0].keys())
        columns = {c: [r[c] for r in records] for c in col_names}
        return cls(name, columns, schema=schema)

    # -- basic accessors -------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names})"

    # -- relational operations -------------------------------------------------

    def _column_meta(self, name: str) -> Column:
        """The declared :class:`Column` for *name*, or an inferred one."""
        if name in self.schema.column_names:
            return self.schema.column(name)
        arr = self._columns[name]
        ctype = (ColumnType.NUMERIC if np.issubdtype(arr.dtype, np.number)
                 else ColumnType.CATEGORICAL)
        return Column(name, ctype)

    def project(self, column_names: Sequence[str]) -> "Table":
        """Return a new table with only the requested columns (preserving order).

        The declared schema follows the projection: column types are kept, the
        primary key survives if projected, and foreign keys whose column is
        projected are retained.
        """
        missing = [c for c in column_names if c not in self._columns]
        if missing:
            raise SchemaError(f"table {self.name!r} has no columns {missing}")
        cols = {c: self._columns[c] for c in column_names}
        kept = set(column_names)
        schema = TableSchema(
            name=self.schema.name,
            columns=[self._column_meta(c) for c in column_names],
            primary_key=(self.schema.primary_key
                         if self.schema.primary_key in kept else None),
            foreign_keys=[fk for fk in self.schema.foreign_keys if fk.column in kept],
        )
        return Table(self.name, cols, schema=schema)

    def select_rows(self, row_indices: Sequence[int]) -> "Table":
        """Return a new table containing only the rows at *row_indices* (in order)."""
        idx = np.asarray(row_indices, dtype=np.int64)
        cols = {c: arr[idx] for c, arr in self._columns.items()}
        return Table(self.name, cols, schema=self.schema)

    def row(self, index: int) -> Dict[str, object]:
        """Return one row as a plain dictionary."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range for {self._num_rows} rows")
        return {c: arr[index] for c, arr in self._columns.items()}

    def with_column(self, name: str, values: Sequence) -> "Table":
        """Return a copy of the table with an extra (or replaced) column.

        The declared schema is threaded through: existing columns keep their
        declared types (a replaced column keeps its declaration too -- the
        caller is updating values, not semantics), and a genuinely new column
        is appended with an inferred type.  Dropping the schema here would
        silently degrade every declared CATEGORICAL/KEY column to the
        dtype-inferred default downstream (``encode_features`` would then
        misclassify categorical-coded numeric columns).
        """
        cols = dict(self._columns)
        arr = np.asarray(values)
        cols[name] = arr
        schema = self.schema
        if name not in schema.column_names:
            ctype = (ColumnType.NUMERIC if np.issubdtype(arr.dtype, np.number)
                     else ColumnType.CATEGORICAL)
            schema = TableSchema(
                name=schema.name,
                columns=list(schema.columns) + [Column(name, ctype)],
                primary_key=schema.primary_key,
                foreign_keys=list(schema.foreign_keys),
            )
        return Table(self.name, cols, schema=schema)

    # -- change capture (incremental maintenance) -------------------------------

    def _feature_names(self, feature_columns: Optional[Sequence[str]] = None) -> List[str]:
        """The columns a captured delta covers (default: schema numeric columns)."""
        if feature_columns is not None:
            return list(feature_columns)
        return [c.name for c in self.schema.columns if c.ctype is ColumnType.NUMERIC]

    def _capture_delta(self, rows: np.ndarray, new_features: np.ndarray,
                       names: Sequence[str], version: int):
        """A :class:`~repro.core.delta.MatrixDelta` over the feature columns.

        ``O(b·d)`` -- reads only the changed rows, never the whole table.
        """
        from repro.core.delta import MatrixDelta

        mask = rows < self._num_rows
        old = np.zeros((rows.size, len(names)), dtype=np.float64)
        if mask.any():
            for j, name in enumerate(names):
                old[mask, j] = self._columns[name][rows[mask]].astype(np.float64)
        return MatrixDelta(rows=rows, old=old, new=new_features,
                           num_rows=self._num_rows, version=version)

    def upsert_rows(self, row_indices, updates: Mapping[str, Sequence],
                    feature_columns: Optional[Sequence[str]] = None):
        """Row-level upsert: returns ``(successor_table, feature_delta)``.

        *row_indices* are positions to update; indices at or beyond
        :attr:`num_rows` append, and appends must be contiguous from the end
        (row numbering is what every indicator matrix and cached position
        index is built on).  *updates* maps column name -> one value per
        index; appended rows must provide every column.  The successor shares
        unchanged column arrays, carries :attr:`version` + 1, and starts with
        fresh caches; the returned delta covers *feature_columns* (default:
        the schema's numeric columns) and feeds ``apply_delta`` on normalized
        matrices and scorers.  This table is untouched.
        """
        rows = np.asarray(row_indices, dtype=np.int64).ravel()
        updates = {name: np.asarray(values) for name, values in updates.items()}
        for name, values in updates.items():
            if name not in self._columns:
                raise SchemaError(f"table {self.name!r} has no column {name!r}")
            if values.shape != (rows.size,):
                raise SchemaError(
                    f"column {name!r}: got {values.shape} update values for "
                    f"{rows.size} row indices"
                )
        if rows.size and rows.min() < 0:
            raise SchemaError("row indices must be non-negative")
        new_len = int(max(self._num_rows, rows.max() + 1)) if rows.size else self._num_rows
        if new_len > self._num_rows:
            appended = set(rows[rows >= self._num_rows].tolist())
            expected = set(range(self._num_rows, new_len))
            if appended != expected:
                raise SchemaError(
                    f"appended row indices must be contiguous from {self._num_rows}; "
                    f"missing {sorted(expected - appended)}"
                )
            missing = [c for c in self._columns if c not in updates]
            if missing:
                raise SchemaError(
                    f"appending rows requires a value for every column; missing {missing}"
                )

        cols: Dict[str, np.ndarray] = {}
        for name, arr in self._columns.items():
            values = updates.get(name)
            if values is None:
                cols[name] = arr  # unchanged: shared with the predecessor
                continue
            dtype = np.result_type(arr.dtype, values.dtype) if values.size else arr.dtype
            col = np.empty(new_len, dtype=dtype)
            col[: self._num_rows] = arr
            col[rows] = values
            cols[name] = col
        successor = Table(self.name, cols, schema=self.schema, version=self.version + 1)

        names = self._feature_names(feature_columns)
        new_features = np.zeros((rows.size, len(names)), dtype=np.float64)
        for j, name in enumerate(names):
            source = updates.get(name)
            if source is not None:
                new_features[:, j] = source.astype(np.float64)
            else:
                mask = rows < self._num_rows
                new_features[mask, j] = self._columns[name][rows[mask]].astype(np.float64)
        return successor, self._capture_delta(rows, new_features, names, successor.version)

    def delete_rows(self, row_indices, feature_columns: Optional[Sequence[str]] = None):
        """Tombstone delete: returns ``(successor_table, feature_delta)``.

        The rows' feature columns drop to zero but the rows (and their keys)
        remain, preserving row numbering -- a physical delete would renumber
        every row behind it and invalidate all indicator matrices and cached
        position indexes at once.  The delta is the zeroing, so downstream
        patches remove exactly the rows' contributions.
        """
        rows = np.asarray(row_indices, dtype=np.int64).ravel()
        if rows.size and (rows.min() < 0 or rows.max() >= self._num_rows):
            raise SchemaError(
                f"delete indices must be within 0..{self._num_rows - 1}"
            )
        names = self._feature_names(feature_columns)
        cols = dict(self._columns)
        for name in names:
            col = np.array(self._columns[name])
            col[rows] = 0
            cols[name] = col
        successor = Table(self.name, cols, schema=self.schema, version=self.version + 1)
        zeros = np.zeros((rows.size, len(names)), dtype=np.float64)
        return successor, self._capture_delta(rows, zeros, names, successor.version)

    # -- key utilities ----------------------------------------------------------

    def key_position_index(self, key_column: str) -> Dict[object, int]:
        """Map each value of *key_column* to its (unique) row position.

        Raises :class:`SchemaError` when the column contains duplicates, since
        a primary key must identify rows uniquely.
        """
        values = self.column(key_column)
        index: Dict[object, int] = {}
        for pos, value in enumerate(values.tolist()):
            if value in index:
                raise SchemaError(
                    f"table {self.name!r}: duplicate primary key value {value!r} in column {key_column!r}"
                )
            index[value] = pos
        return index

    def _key_index(self, key_column: str):
        """Cached ``(dict index, sort order, sorted keys)`` for one key column.

        The sorted pair enables the vectorized ``searchsorted`` lookup path;
        it is ``(None, None)`` for object-dtype columns, whose values may not
        be mutually orderable (the dict path handles those).
        """
        cache = getattr(self, "_key_indexes", None)
        if cache is None:
            cache = {}
            self._key_indexes = cache
        entry = cache.get(key_column)
        if entry is None:
            index = self.key_position_index(key_column)
            keys = self.column(key_column)
            order = sorted_keys = None
            if keys.dtype != object:
                order = np.argsort(keys, kind="stable")
                sorted_keys = keys[order]
            entry = (index, order, sorted_keys)
            cache[key_column] = entry
        return entry

    def positions_for_keys(self, key_column: str, values: Sequence) -> np.ndarray:
        """Batch key -> row lookup: row positions of *values* by primary key.

        This is the bridge from natural keys (product ids, account numbers)
        to the attribute-table row indices indicator matrices and the
        factorized scorer are built on.  Lookups are vectorized: a one-time
        ``argsort`` of the key column (cached per ``(table, column)``) turns
        each batch into one ``searchsorted`` over the sorted keys.
        Object-dtype columns fall back to per-key dict lookups over the same
        cached index.  The cache is safe because column arrays are stored
        read-only -- in-place writes raise, and the sanctioned mutation path
        (``upsert_rows`` / ``delete_rows``) returns a successor table with
        fresh caches.  Unknown keys raise :class:`SchemaError` (with the
        offending value on the exception's ``key`` attribute so join-layer
        callers can re-raise with foreign-key context).
        """
        index, order, sorted_keys = self._key_index(key_column)
        arr = np.asarray(values)
        same_kind = (sorted_keys is not None and arr.dtype != object
                     and (arr.dtype.kind == sorted_keys.dtype.kind
                          or (arr.dtype.kind in "biuf" and sorted_keys.dtype.kind in "biuf")))
        if same_kind and sorted_keys.size:
            flat = arr.ravel()
            pos = np.searchsorted(sorted_keys, flat)
            pos = np.minimum(pos, sorted_keys.shape[0] - 1)
            found = sorted_keys[pos] == flat  # NaN lookups compare unequal -> unknown
            if not np.all(found):
                bad = flat[int(np.argmax(~found))].item()
                exc = SchemaError(
                    f"table {self.name!r}: unknown key {bad!r} in column {key_column!r}"
                )
                exc.key = bad
                raise exc
            return order[pos].astype(np.int64)
        positions = np.empty(arr.size, dtype=np.int64)
        for i, value in enumerate(arr.tolist()):
            try:
                positions[i] = index[value]
            except (KeyError, TypeError):
                exc = SchemaError(
                    f"table {self.name!r}: unknown key {value!r} in column {key_column!r}"
                )
                exc.key = value
                raise exc from None
        return positions

    def group_positions(self, column_name: str) -> Dict[object, List[int]]:
        """Map each distinct value of a column to the list of row positions holding it."""
        groups: Dict[object, List[int]] = {}
        for pos, value in enumerate(self.column(column_name).tolist()):
            groups.setdefault(value, []).append(pos)
        return groups

    # -- matrix conversion -------------------------------------------------------

    def numeric_matrix(self, column_names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numeric columns into an ``(n, d)`` dense float matrix."""
        names = list(column_names) if column_names is not None else [
            c.name for c in self.schema.columns if c.ctype is ColumnType.NUMERIC
        ]
        if not names:
            return np.zeros((self._num_rows, 0))
        arrays = []
        for name in names:
            arr = self.column(name)
            if not np.issubdtype(arr.dtype, np.number):
                raise SchemaError(f"column {name!r} is not numeric")
            arrays.append(arr.astype(np.float64))
        return np.column_stack(arrays)
