"""A small column-oriented table.

:class:`Table` is the unit the relational substrate manipulates: an ordered
set of named columns, each a 1-D NumPy array of equal length, plus an optional
:class:`~repro.relational.schema.TableSchema` describing column roles and key
constraints.  It intentionally supports only the operations the Morpheus
pipeline needs -- projection, selection, row lookup by key, and conversion of
feature columns to matrices -- rather than a general query engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SchemaError
from repro.relational.schema import Column, ColumnType, TableSchema


class Table:
    """A named, column-oriented table with equal-length column arrays."""

    def __init__(self, name: str, columns: Mapping[str, Sequence],
                 schema: Optional[TableSchema] = None):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self._columns: Dict[str, np.ndarray] = {}
        length = None
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise SchemaError(f"column {col_name!r} must be one-dimensional")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"column {col_name!r} has {arr.shape[0]} rows, expected {length}"
                )
            self._columns[col_name] = arr
        self._num_rows = int(length or 0)
        self.schema = schema or self._infer_schema()
        missing = [c for c in self.schema.column_names if c not in self._columns]
        if missing:
            raise SchemaError(f"table {name!r} is missing schema columns {missing}")

    # -- construction helpers -------------------------------------------------

    def _infer_schema(self) -> TableSchema:
        """Build a best-effort schema: numeric dtypes are numeric, rest categorical."""
        cols = []
        for col_name, arr in self._columns.items():
            if np.issubdtype(arr.dtype, np.number):
                cols.append(Column(col_name, ColumnType.NUMERIC))
            else:
                cols.append(Column(col_name, ColumnType.CATEGORICAL))
        return TableSchema(name=self.name, columns=cols)

    @classmethod
    def from_records(cls, name: str, records: Iterable[Mapping],
                     schema: Optional[TableSchema] = None) -> "Table":
        """Build a table from an iterable of row dictionaries."""
        records = list(records)
        if not records:
            raise SchemaError(f"table {name!r}: cannot build from zero records")
        col_names = list(records[0].keys())
        columns = {c: [r[c] for r in records] for c in col_names}
        return cls(name, columns, schema=schema)

    # -- basic accessors -------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names})"

    # -- relational operations -------------------------------------------------

    def project(self, column_names: Sequence[str]) -> "Table":
        """Return a new table with only the requested columns (preserving order)."""
        missing = [c for c in column_names if c not in self._columns]
        if missing:
            raise SchemaError(f"table {self.name!r} has no columns {missing}")
        cols = {c: self._columns[c] for c in column_names}
        return Table(self.name, cols)

    def select_rows(self, row_indices: Sequence[int]) -> "Table":
        """Return a new table containing only the rows at *row_indices* (in order)."""
        idx = np.asarray(row_indices, dtype=np.int64)
        cols = {c: arr[idx] for c, arr in self._columns.items()}
        return Table(self.name, cols, schema=self.schema)

    def row(self, index: int) -> Dict[str, object]:
        """Return one row as a plain dictionary."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range for {self._num_rows} rows")
        return {c: arr[index] for c, arr in self._columns.items()}

    def with_column(self, name: str, values: Sequence) -> "Table":
        """Return a copy of the table with an extra (or replaced) column."""
        cols = dict(self._columns)
        cols[name] = np.asarray(values)
        return Table(self.name, cols)

    # -- key utilities ----------------------------------------------------------

    def key_position_index(self, key_column: str) -> Dict[object, int]:
        """Map each value of *key_column* to its (unique) row position.

        Raises :class:`SchemaError` when the column contains duplicates, since
        a primary key must identify rows uniquely.
        """
        values = self.column(key_column)
        index: Dict[object, int] = {}
        for pos, value in enumerate(values.tolist()):
            if value in index:
                raise SchemaError(
                    f"table {self.name!r}: duplicate primary key value {value!r} in column {key_column!r}"
                )
            index[value] = pos
        return index

    def positions_for_keys(self, key_column: str, values: Sequence) -> np.ndarray:
        """Batch key -> row lookup: row positions of *values* by primary key.
        (Per-key dict lookups over a cached index -- O(1) each, not
        numpy-vectorized; fine for request-sized batches.)

        This is the serving-time bridge from natural keys (product ids,
        account numbers) to the attribute-table row indices the factorized
        scorer gathers partial scores with.  The position index is built
        once per ``(table, column)`` and cached on the table, relying on the
        library-wide convention that base data is treated as immutable
        (mutating a column array in place invalidates no caches -- same
        contract as the lazy layer's FactorizedCache); unknown keys raise
        :class:`SchemaError`.
        """
        cache = getattr(self, "_key_indexes", None)
        if cache is None:
            cache = {}
            self._key_indexes = cache
        index = cache.get(key_column)
        if index is None:
            index = self.key_position_index(key_column)
            cache[key_column] = index
        positions = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(np.asarray(values).tolist()):
            try:
                positions[i] = index[value]
            except KeyError:
                raise SchemaError(
                    f"table {self.name!r}: unknown key {value!r} in column {key_column!r}"
                ) from None
        return positions

    def group_positions(self, column_name: str) -> Dict[object, List[int]]:
        """Map each distinct value of a column to the list of row positions holding it."""
        groups: Dict[object, List[int]] = {}
        for pos, value in enumerate(self.column(column_name).tolist()):
            groups.setdefault(value, []).append(pos)
        return groups

    # -- matrix conversion -------------------------------------------------------

    def numeric_matrix(self, column_names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Stack numeric columns into an ``(n, d)`` dense float matrix."""
        names = list(column_names) if column_names is not None else [
            c.name for c in self.schema.columns if c.ctype is ColumnType.NUMERIC
        ]
        if not names:
            return np.zeros((self._num_rows, 0))
        arrays = []
        for name in names:
            arr = self.column(name)
            if not np.issubdtype(arr.dtype, np.number):
                raise SchemaError(f"column {name!r} is not numeric")
            arrays.append(arr.astype(np.float64))
        return np.column_stack(arrays)
