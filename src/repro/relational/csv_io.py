"""CSV input/output for :class:`~repro.relational.table.Table`.

The paper's quickstart constructs the normalized matrix from two CSV files
(``read.csv`` in R).  This module provides the equivalent so the examples can
follow the same shape: ``read_csv`` infers numeric columns automatically and
returns a :class:`Table`; ``write_csv`` round-trips it.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import SchemaError
from repro.relational.table import Table

PathLike = Union[str, Path]


def _coerce_column(values: List[str]) -> np.ndarray:
    """Convert a list of strings to float64 when every entry parses, else keep strings."""
    try:
        return np.asarray([float(v) for v in values], dtype=np.float64)
    except ValueError:
        return np.asarray(values, dtype=object)


def read_csv(path: PathLike, name: Optional[str] = None,
             numeric_columns: Optional[Sequence[str]] = None) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Column types are inferred: a column where every value parses as a float is
    numeric, everything else is kept as strings (and will be one-hot encoded
    by :func:`repro.relational.encoding.encode_features`).  Pass
    *numeric_columns* to force specific columns to be parsed as numbers.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        raw: Dict[str, List[str]] = {col: [] for col in header}
        for row in reader:
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV file {path}: row with {len(row)} fields, expected {len(header)}"
                )
            for col, value in zip(header, row):
                raw[col].append(value)
    columns: Dict[str, np.ndarray] = {}
    for col, values in raw.items():
        if numeric_columns is not None and col in numeric_columns:
            columns[col] = np.asarray([float(v) for v in values], dtype=np.float64)
        else:
            columns[col] = _coerce_column(values)
    return Table(name or path.stem, columns)


def write_csv(table: Table, path: PathLike) -> None:
    """Write a :class:`Table` to a CSV file with a header row."""
    path = Path(path)
    names = table.column_names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            row = table.row(i)
            writer.writerow([row[c] for c in names])
