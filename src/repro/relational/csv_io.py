"""CSV input/output for :class:`~repro.relational.table.Table`.

The paper's quickstart constructs the normalized matrix from two CSV files
(``read.csv`` in R).  This module provides the equivalent so the examples can
follow the same shape: ``read_csv`` infers numeric columns automatically and
returns a :class:`Table`; ``write_csv`` round-trips it.

For entity tables too large to hold in memory, :func:`read_csv_chunks`
streams the file one row chunk at a time and
:func:`stream_normalized_batches` turns each chunk directly into a factorized
mini-batch -- a :class:`~repro.core.normalized_matrix.NormalizedMatrix` whose
entity block and indicators cover only the chunk while the (small,
one-time-encoded) attribute tables are shared across every batch.  The full
entity matrix ``S`` is never built, which is what makes out-of-core
``partial_fit`` training possible (see ``docs/streaming.md``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import SchemaError
from repro.relational.table import Table

PathLike = Union[str, Path]


def _check_unique_header(header: List[str], path: Path) -> None:
    """Reject duplicate column names up front, naming the offenders.

    Both CSV readers key columns by name: letting a duplicate through either
    merges both occurrences into one column (``read_csv``, which then dies
    later with a confusing row-count mismatch) or silently drops the earlier
    occurrence's data (``read_csv_chunks``, last one wins).
    """
    if len(set(header)) == len(header):
        return
    seen: set = set()
    duplicates: set = set()
    for col in header:
        (duplicates if col in seen else seen).add(col)
    duplicates = sorted(duplicates)
    raise SchemaError(
        f"CSV file {path}: duplicate header column(s) {duplicates}; "
        "column names must be unique"
    )


def _coerce_column(values: List[str]) -> np.ndarray:
    """Convert a list of strings to float64 when every entry parses, else keep strings."""
    try:
        return np.asarray([float(v) for v in values], dtype=np.float64)
    except ValueError:
        return np.asarray(values, dtype=object)


def read_csv(path: PathLike, name: Optional[str] = None,
             numeric_columns: Optional[Sequence[str]] = None) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Column types are inferred: a column where every value parses as a float is
    numeric, everything else is kept as strings (and will be one-hot encoded
    by :func:`repro.relational.encoding.encode_features`).  Pass
    *numeric_columns* to force specific columns to be parsed as numbers.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        _check_unique_header(header, path)
        raw: Dict[str, List[str]] = {col: [] for col in header}
        for row in reader:
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV file {path}: row with {len(row)} fields, expected {len(header)}"
                )
            for col, value in zip(header, row):
                raw[col].append(value)
    columns: Dict[str, np.ndarray] = {}
    for col, values in raw.items():
        if numeric_columns is not None and col in numeric_columns:
            columns[col] = np.asarray([float(v) for v in values], dtype=np.float64)
        else:
            columns[col] = _coerce_column(values)
    return Table(name or path.stem, columns)


def _chunk_to_table(header: List[str], rows: List[List[str]], name: str,
                    numeric_columns: Optional[Sequence[str]],
                    raw_columns: Optional[Sequence[str]] = None) -> Table:
    columns: Dict[str, np.ndarray] = {}
    for j, col in enumerate(header):
        values = [row[j] for row in rows]
        if raw_columns is not None and col in raw_columns:
            columns[col] = np.asarray(values, dtype=object)
        elif numeric_columns is not None and col in numeric_columns:
            try:
                columns[col] = np.asarray([float(v) for v in values], dtype=np.float64)
            except ValueError as exc:
                raise SchemaError(
                    f"column {col!r} was pinned numeric but contains a "
                    f"non-numeric value ({exc}); streamed entity features and "
                    "targets must be numeric -- one-hot vocabularies cannot be "
                    "inferred per chunk"
                ) from None
        else:
            columns[col] = _coerce_column(values)
    return Table(name, columns)


def read_csv_chunks(path: PathLike, chunk_rows: int, name: Optional[str] = None,
                    numeric_columns: Optional[Sequence[str]] = None,
                    raw_columns: Optional[Sequence[str]] = None) -> Iterator[Table]:
    """Stream a CSV file as a sequence of :class:`Table` chunks.

    Reads at most *chunk_rows* data rows at a time -- the file is never fully
    resident -- and yields each chunk as its own table with the shared header.
    Column types are inferred *per chunk* (a column where every value of the
    chunk parses as a float is numeric); pass *numeric_columns* to pin columns
    that must always parse as numbers, and *raw_columns* to pin columns that
    must always stay strings -- either way the type cannot drift with chunk
    boundaries.  A file with a header but no data rows yields nothing.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be at least 1")
    path = Path(path)
    table_name = name or path.stem
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        _check_unique_header(header, path)
        rows: List[List[str]] = []
        for row in reader:
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV file {path}: row with {len(row)} fields, expected {len(header)}"
                )
            rows.append(row)
            if len(rows) == chunk_rows:
                yield _chunk_to_table(header, rows, table_name, numeric_columns,
                                      raw_columns)
                rows = []
        if rows:
            yield _chunk_to_table(header, rows, table_name, numeric_columns,
                                  raw_columns)


def stream_normalized_batches(path: PathLike, edges: Sequence,
                              entity_features: Sequence[str] = (),
                              target_column: Optional[str] = None,
                              chunk_rows: int = 1024, sparse: bool = True,
                              name: Optional[str] = None,
                              memory_budget: Optional[float] = None):
    """Stream an entity CSV as factorized normalized mini-batches.

    The out-of-core counterpart of
    :func:`repro.relational.pipeline.normalized_from_tables`: the attribute
    tables of *edges* (``(fk_column, attribute_table, pk_column,
    feature_columns)`` tuples) are encoded **once** up front, then the entity
    CSV at *path* is read in *chunk_rows*-row chunks and each chunk becomes a
    :class:`~repro.relational.pipeline.NormalizedDataset` whose matrix is a
    chunk-sized :class:`~repro.core.normalized_matrix.NormalizedMatrix`
    sharing those attribute matrices.  The full entity matrix ``S`` is never
    built.

    Entity feature columns must be numeric: a chunk sees only its own rows,
    so a one-hot vocabulary inferred per chunk would drift between batches
    (the attribute tables, encoded whole, may of course be categorical).
    *target_column* is parsed as a numeric column and sliced per chunk.  Pass
    *memory_budget* (bytes) instead of *chunk_rows* to derive the chunk size
    from the planner's memory model, matching how ``engine="auto"`` sizes
    streamed plans.
    """
    from repro.core.normalized_matrix import NormalizedMatrix
    from repro.la.ops import indicator_from_labels
    from repro.relational.encoding import encode_features
    from repro.relational.pipeline import NormalizedDataset

    if not edges:
        raise SchemaError("stream_normalized_batches needs at least one join edge")
    entity_features = list(entity_features)

    # Per-edge state hoisted out of the chunk loop: the attribute features are
    # encoded once, the PK position index is built once (rebuilding it per
    # chunk would make ingestion quadratic in the attribute size), and the
    # foreign-key parse mode is pinned from the attribute PK dtype -- numeric
    # PKs force a numeric fk parse, string PKs keep the fk raw -- so key
    # typing can never drift with chunk boundaries.
    encoded_attributes = []
    pk_indexes = []
    numeric = set(entity_features)
    raw: set = set()
    feature_names: List[str] = list(entity_features)
    for fk_column, attribute_table, pk_column, attribute_columns in edges:
        encoded = encode_features(attribute_table, columns=list(attribute_columns),
                                  sparse=sparse)
        encoded_attributes.append(encoded.matrix)
        feature_names.extend(
            f"{attribute_table.name}.{col}" for col in encoded.feature_names
        )
        pk_indexes.append(attribute_table.key_position_index(pk_column))
        if np.issubdtype(attribute_table.column(pk_column).dtype, np.number):
            numeric.add(fk_column)
        else:
            raw.add(fk_column)

    if memory_budget is not None:
        from repro.core.planner.memory import batch_rows_for_dims

        total_cols = len(entity_features) + sum(m.shape[1] for m in encoded_attributes)
        chunk_rows = batch_rows_for_dims(
            n_rows=0, n_cols=total_cols, num_joins=len(edges),
            memory_budget=memory_budget)

    if target_column is not None:
        numeric.add(target_column)
    for chunk in read_csv_chunks(path, chunk_rows, name=name,
                                 numeric_columns=sorted(numeric),
                                 raw_columns=sorted(raw)):
        entity_matrix = None
        if entity_features:
            blocks = []
            for col in entity_features:
                values = chunk.column(col)
                if not np.issubdtype(values.dtype, np.number):
                    raise SchemaError(
                        f"entity feature column {col!r} is not numeric; streaming "
                        "ingestion cannot infer a consistent one-hot vocabulary "
                        "per chunk -- encode it into an attribute table instead"
                    )
                blocks.append(values.astype(np.float64).reshape(-1, 1))
            entity_matrix = np.hstack(blocks)
            if sparse:
                import scipy.sparse as sp

                entity_matrix = sp.csr_matrix(entity_matrix)
        indicators = []
        for (fk_column, attribute_table, pk_column, _), pk_index in zip(
                edges, pk_indexes):
            labels = np.empty(chunk.num_rows, dtype=np.int64)
            for i, value in enumerate(chunk.column(fk_column).tolist()):
                position = pk_index.get(value)
                if position is None:
                    raise SchemaError(
                        f"foreign key value {value!r} in {chunk.name}.{fk_column} "
                        f"has no match in {attribute_table.name}.{pk_column}"
                    )
                labels[i] = position
            indicators.append(
                indicator_from_labels(labels, num_columns=attribute_table.num_rows))
        target = None
        if target_column is not None:
            target = np.asarray(chunk.column(target_column),
                                dtype=np.float64).reshape(-1, 1)
        # validate=False: a chunk references only a subset of each attribute
        # table's rows, so the full-coverage indicator invariant cannot hold
        # per batch (exactly like the slices take_rows produces).
        matrix = NormalizedMatrix(entity_matrix, indicators, encoded_attributes,
                                  validate=False)
        yield NormalizedDataset(matrix=matrix, feature_names=feature_names,
                                target=target)


def write_csv(table: Table, path: PathLike) -> None:
    """Write a :class:`Table` to a CSV file with a header row."""
    path = Path(path)
    names = table.column_names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            row = table.row(i)
            writer.writerow([row[c] for c in names])
