"""Join execution and indicator-matrix construction.

This module is where the relational world meets the linear-algebra world.
Given base tables it can either

* **materialize** the join output (what the paper calls the materialized
  approach, "M"), or
* build the sparse **indicator matrices** that define the normalized matrix
  (the factorized approach, "F"): ``K_i`` for star-schema PK-FK joins
  (Section 3.1 and 3.5) and ``(I_S, I_R)`` for M:N equi-joins (Section 3.6).

Both paths are used by the benchmarks so that data-preparation time
(Table 12) can be compared between the two approaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SchemaError
from repro.la.chain import ChainedIndicator
from repro.la.ops import indicator_from_labels
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table


@dataclass
class JoinResult:
    """Outcome of a join: either materialized columns or indicator matrices.

    Attributes
    ----------
    materialized:
        The joined :class:`Table` when materialization was requested.
    indicators:
        List of sparse indicator matrices (one per attribute table for star
        schemas; ``[I_S, I_R]`` for M:N joins).
    row_mappings:
        For each indicator matrix, the integer row labels it was built from
        (useful for debugging and for tests).
    """

    materialized: Optional[Table] = None
    indicators: List[sp.csr_matrix] = field(default_factory=list)
    row_mappings: List[np.ndarray] = field(default_factory=list)


# ---------------------------------------------------------------------------
# PK-FK joins
# ---------------------------------------------------------------------------

def _check_key_nan(table: Table, column: str, role: str) -> None:
    """Reject NaN join-key values with an error naming the table and column."""
    values = table.column(column)
    if np.issubdtype(values.dtype, np.floating):
        nan_mask = np.isnan(values)
        if nan_mask.any():
            row = int(np.argmax(nan_mask))
        else:
            return
    elif values.dtype == object:
        nan_rows = [i for i, v in enumerate(values.tolist())
                    if isinstance(v, float) and np.isnan(v)]
        if not nan_rows:
            return
        row = nan_rows[0]
    else:
        return
    raise SchemaError(
        f"{role} column {table.name}.{column} contains NaN at row {row}; "
        "NaN never equals any key, so the join is undefined -- drop or "
        "impute the rows first"
    )


def pk_fk_indicator(entity: Table, fk_column: str, attribute: Table,
                    pk_column: str) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Build the PK-FK indicator matrix ``K`` for one foreign-key edge.

    ``K`` has shape ``(n_S, n_R)`` with ``K[i, j] = 1`` iff row ``i`` of the
    entity table references row ``j`` of the attribute table.  Every entity row
    must reference an existing attribute row (standard referential integrity);
    a dangling foreign key raises :class:`SchemaError` naming the offending
    value, and NaN foreign keys are rejected up front (NaN never matches a
    primary key).

    The key lookup goes through the attribute table's cached
    :meth:`~repro.relational.table.Table.positions_for_keys` index and is
    vectorized, so repeated indicator builds against the same attribute table
    (every snowflake alias sharing a dimension, every rebuild in a training
    sweep) reuse one sorted index instead of re-hashing the primary key
    column per call.

    Returns the indicator matrix together with the integer row labels used to
    build it (``labels[i] = j``).
    """
    fk_values = entity.column(fk_column)
    _check_key_nan(entity, fk_column, "foreign key")
    # A NaN primary key is just as broken as a NaN foreign key: no FK value
    # can ever reference it, so the row is silently unreachable.
    _check_key_nan(attribute, pk_column, "primary key")
    try:
        labels = attribute.positions_for_keys(pk_column, fk_values)
    except SchemaError as exc:
        value = getattr(exc, "key", None)
        if value is None:
            raise  # table-level problem (e.g. duplicate primary key)
        raise SchemaError(
            f"foreign key value {value!r} in {entity.name}.{fk_column} "
            f"has no match in {attribute.name}.{pk_column}"
        ) from None
    indicator = indicator_from_labels(labels, num_columns=attribute.num_rows)
    return indicator, labels


def chained_indicator(hops: Sequence[sp.spmatrix]):
    """Compose per-hop PK-FK indicators into one (possibly chained) indicator.

    A single hop is returned as-is; multiple hops become a factorized
    :class:`~repro.la.chain.ChainedIndicator` representing the product
    ``K_1 K_2 ... K_h`` without materializing it.
    """
    hops = list(hops)
    if not hops:
        raise SchemaError("chained_indicator needs at least one hop")
    if len(hops) == 1:
        return hops[0]
    return ChainedIndicator(hops)


def drop_unreferenced(entity: Table, fk_column: str, attribute: Table,
                      pk_column: str) -> Table:
    """Remove attribute-table rows never referenced by the entity table.

    The paper assumes (w.l.o.g.) that every tuple of ``R`` is referenced by at
    least one tuple of ``S`` and notes that unreferenced tuples can be removed
    a priori (Section 3.1).  This helper performs that pre-processing step.
    """
    referenced = set(entity.column(fk_column).tolist())
    keep = [i for i, v in enumerate(attribute.column(pk_column).tolist()) if v in referenced]
    if len(keep) == attribute.num_rows:
        return attribute
    return attribute.select_rows(keep)


def join_pk_fk(entity: Table, fk_column: str, attribute: Table, pk_column: str,
               attribute_columns: Optional[Sequence[str]] = None) -> Table:
    """Materialize the PK-FK join output ``T = S join R`` as a new table.

    Every column of the entity table is kept; the selected attribute columns
    (all non-key columns by default) are gathered via the foreign key.  Column
    name clashes are resolved by prefixing with the attribute table name.
    """
    _, labels = pk_fk_indicator(entity, fk_column, attribute, pk_column)
    if attribute_columns is None:
        attribute_columns = [c for c in attribute.column_names if c != pk_column]
    columns: Dict[str, np.ndarray] = {c: entity.column(c) for c in entity.column_names}
    schema_cols = [entity._column_meta(c) for c in entity.column_names]
    for col in attribute_columns:
        values = attribute.column(col)[labels]
        out_name = col if col not in columns else f"{attribute.name}.{col}"
        columns[out_name] = values
        meta = attribute._column_meta(col)
        schema_cols.append(meta if meta.name == out_name
                           else Column(out_name, meta.ctype))
    # Column roles survive materialization: the joined table keeps the entity
    # side's keys and every source column's declared type, so downstream
    # encode_features still one-hot encodes categorical-coded numeric columns.
    schema = TableSchema(
        name=f"{entity.name}_join_{attribute.name}", columns=schema_cols,
        primary_key=entity.schema.primary_key,
        foreign_keys=list(entity.schema.foreign_keys),
    )
    return Table(f"{entity.name}_join_{attribute.name}", columns, schema=schema)


def join_star(entity: Table, edges: Sequence[Tuple[str, Table, str]]) -> Table:
    """Materialize a star-schema join of the entity table with several attribute tables.

    *edges* is a sequence of ``(fk_column, attribute_table, pk_column)``
    triples, applied left to right.
    """
    result = entity
    for fk_column, attribute, pk_column in edges:
        result = join_pk_fk(result, fk_column, attribute, pk_column)
    return result


def star_indicators(entity: Table, edges: Sequence[Tuple[str, Table, str]]
                    ) -> JoinResult:
    """Build the indicator matrices ``K_1 .. K_q`` for a star schema."""
    result = JoinResult()
    for fk_column, attribute, pk_column in edges:
        indicator, labels = pk_fk_indicator(entity, fk_column, attribute, pk_column)
        result.indicators.append(indicator)
        result.row_mappings.append(labels)
    return result


# ---------------------------------------------------------------------------
# M:N equi-joins
# ---------------------------------------------------------------------------

def mn_join_indicators(left: Table, left_column: str, right: Table,
                       right_column: str) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """Build the pair of indicator matrices ``(I_S, I_R)`` for an M:N equi-join.

    Following Section 3.6, we conceptually compute the non-deduplicating
    projection join ``T' = pi(S) join pi(R)`` on the join attributes and record
    which source rows produced each output row: ``I_S[t, i] = 1`` iff output
    row ``t`` came from row ``i`` of the left table (similarly for ``I_R``).
    Output rows are ordered by left row index then right row index, which is
    deterministic and matches a nested-loop join over sorted groups.
    """
    _check_key_nan(left, left_column, "M:N join key")
    _check_key_nan(right, right_column, "M:N join key")
    right_groups = right.group_positions(right_column)
    left_values = left.column(left_column)
    left_rows: List[int] = []
    right_rows: List[int] = []
    for i, value in enumerate(left_values.tolist()):
        matches = right_groups.get(value)
        if not matches:
            continue
        for j in matches:
            left_rows.append(i)
            right_rows.append(j)
    if not left_rows:
        raise SchemaError(
            f"M:N join between {left.name}.{left_column} and {right.name}.{right_column} is empty"
        )
    i_s = indicator_from_labels(np.asarray(left_rows), num_columns=left.num_rows)
    i_r = indicator_from_labels(np.asarray(right_rows), num_columns=right.num_rows)
    return i_s, i_r


def join_mn(left: Table, left_column: str, right: Table, right_column: str,
            left_columns: Optional[Sequence[str]] = None,
            right_columns: Optional[Sequence[str]] = None) -> Table:
    """Materialize an M:N equi-join with the same row order as the indicators."""
    i_s, i_r = mn_join_indicators(left, left_column, right, right_column)
    left_labels = np.asarray(i_s.argmax(axis=1)).ravel()
    right_labels = np.asarray(i_r.argmax(axis=1)).ravel()
    if left_columns is None:
        left_columns = list(left.column_names)
    if right_columns is None:
        right_columns = [c for c in right.column_names if c != right_column]
    columns: Dict[str, np.ndarray] = {}
    schema_cols = []
    for col in left_columns:
        columns[col] = left.column(col)[left_labels]
        schema_cols.append(left._column_meta(col))
    for col in right_columns:
        out_name = col if col not in columns else f"{right.name}.{col}"
        columns[out_name] = right.column(col)[right_labels]
        meta = right._column_meta(col)
        schema_cols.append(meta if meta.name == out_name
                           else Column(out_name, meta.ctype))
    # The join output has no primary key (rows multiply), but column types
    # must survive so feature encoding treats the output like the sources.
    schema = TableSchema(name=f"{left.name}_mnjoin_{right.name}", columns=schema_cols)
    return Table(f"{left.name}_mnjoin_{right.name}", columns, schema=schema)


def mn_drop_noncontributing(left: Table, left_column: str, right: Table,
                            right_column: str) -> Tuple[Table, Table]:
    """Drop rows of either table that contribute nothing to the M:N join output.

    This mirrors the paper's assumption that every column of ``I_S`` and
    ``I_R`` has at least one non-zero (Section 3.6).
    """
    left_values = set(left.column(left_column).tolist())
    right_values = set(right.column(right_column).tolist())
    common = left_values & right_values
    left_keep = [i for i, v in enumerate(left.column(left_column).tolist()) if v in common]
    right_keep = [i for i, v in enumerate(right.column(right_column).tolist()) if v in common]
    if not left_keep or not right_keep:
        raise SchemaError("M:N join would be empty after dropping non-contributing rows")
    left_out = left if len(left_keep) == left.num_rows else left.select_rows(left_keep)
    right_out = right if len(right_keep) == right.num_rows else right.select_rows(right_keep)
    return left_out, right_out
