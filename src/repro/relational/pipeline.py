"""High-level builders: from relational tables straight to normalized matrices.

These helpers tie the relational substrate and the Morpheus core together so a
user can go from base :class:`~repro.relational.table.Table` objects to a
ready-to-train normalized matrix in one call -- encoding features, building
indicator matrices and (optionally) applying the heuristic decision rule.

They return a :class:`NormalizedDataset` carrying the normalized matrix, the
feature names (useful for model inspection) and the target vector, mirroring
what a user of the original Morpheus R package would assemble by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.decision import DecisionRule
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import SchemaError
from repro.la.types import MatrixLike
from repro.relational.encoding import encode_features
from repro.relational.join import (
    chained_indicator,
    mn_join_indicators,
    pk_fk_indicator,
)
from repro.relational.schema import SchemaGraph
from repro.relational.table import Table

#: A star-schema join edge: (foreign-key column in the entity table,
#: attribute table, primary-key column, feature columns of the attribute table).
JoinEdge = Tuple[str, Table, str, Sequence[str]]


@dataclass
class NormalizedDataset:
    """A ready-to-train dataset: data matrix, feature names and optional target."""

    matrix: Union[NormalizedMatrix, MNNormalizedMatrix, MatrixLike]
    feature_names: List[str]
    target: Optional[np.ndarray] = None

    @property
    def is_factorized(self) -> bool:
        return isinstance(self.matrix, (NormalizedMatrix, MNNormalizedMatrix))

    @property
    def shape(self) -> tuple:
        return self.matrix.shape


def normalized_from_tables(entity: Table, edges: Sequence[JoinEdge],
                           entity_features: Sequence[str] = (),
                           target_column: Optional[str] = None,
                           sparse: bool = True,
                           decision_rule: Optional[DecisionRule] = None,
                           force_factorized: bool = True) -> NormalizedDataset:
    """Build a star-schema normalized matrix from an entity table and join edges.

    Parameters
    ----------
    entity:
        The entity table ``S`` (holds the foreign keys and, optionally, the
        target column).
    edges:
        One :data:`JoinEdge` per attribute table, in the column order the
        resulting matrix should use.
    entity_features:
        Feature columns of the entity table (may be empty, as in the paper's
        Movies / Yelp datasets).
    target_column:
        Optional column of the entity table to return as the target vector.
    sparse:
        Encode features as sparse CSR (the default, matching the paper's
        treatment of one-hot encoded data) or dense.
    decision_rule / force_factorized:
        With ``force_factorized=True`` (default) the factorized representation
        is always returned.  Otherwise the heuristic decision rule decides and
        the materialized matrix may be returned instead, exactly like the
        ``morpheus`` factory.
    """
    if not edges:
        raise SchemaError("normalized_from_tables needs at least one join edge")

    feature_names: List[str] = []
    entity_matrix = None
    if entity_features:
        encoded = encode_features(entity, columns=list(entity_features), sparse=sparse)
        entity_matrix = encoded.matrix
        feature_names.extend(encoded.feature_names)

    indicators = []
    attributes = []
    for fk_column, attribute_table, pk_column, attribute_columns in edges:
        indicator, _ = pk_fk_indicator(entity, fk_column, attribute_table, pk_column)
        encoded = encode_features(attribute_table, columns=list(attribute_columns), sparse=sparse)
        indicators.append(indicator)
        attributes.append(encoded.matrix)
        feature_names.extend(f"{attribute_table.name}.{name}" for name in encoded.feature_names)

    normalized = NormalizedMatrix(entity_matrix, indicators, attributes)
    matrix: Union[NormalizedMatrix, MatrixLike] = normalized
    if not force_factorized:
        rule = decision_rule or DecisionRule()
        if not rule.predict(normalized.tuple_ratio, normalized.feature_ratio):
            matrix = normalized.materialize()

    target = None
    if target_column is not None:
        target = _target_vector(entity, target_column)
    return NormalizedDataset(matrix=matrix, feature_names=feature_names, target=target)


def _target_vector(entity: Table, target_column: str) -> np.ndarray:
    """The target column as an ``(n, 1)`` float vector, with a typed error.

    Booleans are accepted (0/1 labels); any other non-numeric dtype raises a
    :class:`SchemaError` naming the column and its dtype instead of letting
    ``np.asarray(..., dtype=float)`` surface a bare ``ValueError``.
    """
    values = entity.column(target_column)
    if values.dtype == bool:
        values = values.astype(np.float64)
    if not np.issubdtype(values.dtype, np.number):
        raise SchemaError(
            f"target column {target_column!r} of table {entity.name!r} has "
            f"non-numeric dtype {values.dtype}; encode or cast it to numbers "
            "before training"
        )
    return np.asarray(values, dtype=np.float64).reshape(-1, 1)


def normalized_from_schema(graph: SchemaGraph, tables,
                           entity_features: Optional[Sequence[str]] = None,
                           target_column: Optional[str] = None,
                           sparse: bool = True,
                           features: Optional[dict] = None,
                           collapse: str = "auto",
                           workload=None) -> NormalizedDataset:
    """Lift a declarative snowflake :class:`SchemaGraph` into a normalized matrix.

    Walks the graph's joins masters-first, builds one PK-FK hop indicator per
    join (memoized, so a shared dimension joined under two roles reuses the
    same hop matrix), and gives each alias a (possibly multi-hop) indicator:
    the chain of hops along ``graph.join_path(alias)``, kept factorized as a
    :class:`~repro.la.chain.ChainedIndicator` unless the collapse policy
    decides materializing the product is cheaper for the workload.

    Parameters
    ----------
    graph:
        The validated join graph (fact table, joins, aliases).
    tables:
        Mapping of physical table name -> :class:`Table` realizing the graph.
    entity_features:
        Feature columns of the fact table.  ``None`` (default) derives them
        from the fact table's schema: all feature-typed columns that are not
        used as a join key in the graph.  Pass ``()`` for no entity features.
    target_column:
        Optional fact-table column returned as the target vector.
    features:
        Optional per-alias override: alias -> list of feature columns of that
        dimension table.  Aliases not listed fall back to the schema-derived
        default (feature columns minus the keys the graph uses).
    collapse:
        Chain-collapse policy: ``"auto"`` (cost-based,
        :func:`repro.core.planner.chains.decide_collapse`), ``"never"``, or
        ``"always"``.  Decisions are recorded on the result matrix
        (``chain_decisions``) so ``Plan.explain()`` can report them.
    workload:
        Optional :class:`~repro.core.planner.workload.WorkloadDescriptor`
        informing the ``"auto"`` collapse decision (how many passes will
        amortize a materialized chain); defaults to a single generic pass.
    """
    from repro.core.planner.chains import maybe_collapse

    graph.validate_tables(tables)
    fact = tables[graph.fact]

    # The graph's join keys never default to features: FK columns on the
    # master side, PK columns on the detail side.
    keys_used: dict = {graph.fact: set()}
    for join in graph.resolve_order():
        keys_used.setdefault(join.alias, set()).add(join.detail.column)
        master_name = join.master.table
        keys_used.setdefault(master_name, set()).add(join.master.column)

    def default_features(alias: str, table: Table) -> List[str]:
        used = keys_used.get(alias, set())
        return [c.name for c in table.schema.feature_columns() if c.name not in used]

    feature_names: List[str] = []
    entity_matrix = None
    if entity_features is None:
        entity_features = default_features(graph.fact, fact)
    if target_column is not None:
        entity_features = [c for c in entity_features if c != target_column]
    if entity_features:
        encoded = encode_features(fact, columns=list(entity_features), sparse=sparse)
        entity_matrix = encoded.matrix
        feature_names.extend(encoded.feature_names)

    # One hop indicator per join, memoized on the join object: a shared
    # dimension reached through two roles rebuilds nothing, and the cached
    # positions_for_keys index inside pk_fk_indicator dedupes the key hashing
    # across joins against the same detail table.
    hop_cache: dict = {}

    def hop_indicator(join):
        if join not in hop_cache:
            master_table = tables[graph.table_for(join.master.table)]
            detail_table = tables[join.detail.table]
            indicator, _ = pk_fk_indicator(
                master_table, join.master.column, detail_table, join.detail.column)
            hop_cache[join] = indicator
        return hop_cache[join]

    indicators = []
    attributes = []
    chain_decisions: List[dict] = []
    overrides = features or {}
    for table_index, join in enumerate(graph.resolve_order()):
        alias = join.alias
        detail_table = tables[join.detail.table]
        hops = [hop_indicator(j) for j in graph.join_path(alias)]
        indicator = chained_indicator(hops)
        if len(hops) > 1:
            indicator, decision = maybe_collapse(
                indicator, workload, table_index, mode=collapse)
            if decision.collapse:
                # Live chains get fresh decisions at plan time; only collapsed
                # ones must be recorded here or the choice would be invisible.
                chain_decisions.append(decision.to_json())
        alias_features = overrides.get(alias)
        if alias_features is None:
            alias_features = default_features(alias, detail_table)
        encoded = encode_features(detail_table, columns=list(alias_features),
                                  sparse=sparse)
        indicators.append(indicator)
        attributes.append(encoded.matrix)
        feature_names.extend(f"{alias}.{name}" for name in encoded.feature_names)

    normalized = NormalizedMatrix(entity_matrix, indicators, attributes)
    if chain_decisions:
        normalized.chain_decisions = chain_decisions

    target = None
    if target_column is not None:
        target = _target_vector(fact, target_column)
    return NormalizedDataset(matrix=normalized, feature_names=feature_names,
                             target=target)


def mn_normalized_from_tables(left: Table, left_join_column: str,
                              right: Table, right_join_column: str,
                              left_features: Sequence[str],
                              right_features: Sequence[str],
                              sparse: bool = True) -> NormalizedDataset:
    """Build a two-table M:N normalized matrix ``T = [I_S S, I_R R]`` from tables."""
    i_left, i_right = mn_join_indicators(left, left_join_column, right, right_join_column)
    left_encoded = encode_features(left, columns=list(left_features), sparse=sparse)
    right_encoded = encode_features(right, columns=list(right_features), sparse=sparse)
    matrix = MNNormalizedMatrix([i_left, i_right], [left_encoded.matrix, right_encoded.matrix])
    feature_names = [f"{left.name}.{name}" for name in left_encoded.feature_names]
    feature_names.extend(f"{right.name}.{name}" for name in right_encoded.feature_names)
    return NormalizedDataset(matrix=matrix, feature_names=feature_names)
