"""High-level builders: from relational tables straight to normalized matrices.

These helpers tie the relational substrate and the Morpheus core together so a
user can go from base :class:`~repro.relational.table.Table` objects to a
ready-to-train normalized matrix in one call -- encoding features, building
indicator matrices and (optionally) applying the heuristic decision rule.

They return a :class:`NormalizedDataset` carrying the normalized matrix, the
feature names (useful for model inspection) and the target vector, mirroring
what a user of the original Morpheus R package would assemble by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.decision import DecisionRule
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import SchemaError
from repro.la.types import MatrixLike
from repro.relational.encoding import encode_features
from repro.relational.join import mn_join_indicators, pk_fk_indicator
from repro.relational.table import Table

#: A star-schema join edge: (foreign-key column in the entity table,
#: attribute table, primary-key column, feature columns of the attribute table).
JoinEdge = Tuple[str, Table, str, Sequence[str]]


@dataclass
class NormalizedDataset:
    """A ready-to-train dataset: data matrix, feature names and optional target."""

    matrix: Union[NormalizedMatrix, MNNormalizedMatrix, MatrixLike]
    feature_names: List[str]
    target: Optional[np.ndarray] = None

    @property
    def is_factorized(self) -> bool:
        return isinstance(self.matrix, (NormalizedMatrix, MNNormalizedMatrix))

    @property
    def shape(self) -> tuple:
        return self.matrix.shape


def normalized_from_tables(entity: Table, edges: Sequence[JoinEdge],
                           entity_features: Sequence[str] = (),
                           target_column: Optional[str] = None,
                           sparse: bool = True,
                           decision_rule: Optional[DecisionRule] = None,
                           force_factorized: bool = True) -> NormalizedDataset:
    """Build a star-schema normalized matrix from an entity table and join edges.

    Parameters
    ----------
    entity:
        The entity table ``S`` (holds the foreign keys and, optionally, the
        target column).
    edges:
        One :data:`JoinEdge` per attribute table, in the column order the
        resulting matrix should use.
    entity_features:
        Feature columns of the entity table (may be empty, as in the paper's
        Movies / Yelp datasets).
    target_column:
        Optional column of the entity table to return as the target vector.
    sparse:
        Encode features as sparse CSR (the default, matching the paper's
        treatment of one-hot encoded data) or dense.
    decision_rule / force_factorized:
        With ``force_factorized=True`` (default) the factorized representation
        is always returned.  Otherwise the heuristic decision rule decides and
        the materialized matrix may be returned instead, exactly like the
        ``morpheus`` factory.
    """
    if not edges:
        raise SchemaError("normalized_from_tables needs at least one join edge")

    feature_names: List[str] = []
    entity_matrix = None
    if entity_features:
        encoded = encode_features(entity, columns=list(entity_features), sparse=sparse)
        entity_matrix = encoded.matrix
        feature_names.extend(encoded.feature_names)

    indicators = []
    attributes = []
    for fk_column, attribute_table, pk_column, attribute_columns in edges:
        indicator, _ = pk_fk_indicator(entity, fk_column, attribute_table, pk_column)
        encoded = encode_features(attribute_table, columns=list(attribute_columns), sparse=sparse)
        indicators.append(indicator)
        attributes.append(encoded.matrix)
        feature_names.extend(f"{attribute_table.name}.{name}" for name in encoded.feature_names)

    normalized = NormalizedMatrix(entity_matrix, indicators, attributes)
    matrix: Union[NormalizedMatrix, MatrixLike] = normalized
    if not force_factorized:
        rule = decision_rule or DecisionRule()
        if not rule.predict(normalized.tuple_ratio, normalized.feature_ratio):
            matrix = normalized.materialize()

    target = None
    if target_column is not None:
        target = np.asarray(entity.column(target_column), dtype=np.float64).reshape(-1, 1)
    return NormalizedDataset(matrix=matrix, feature_names=feature_names, target=target)


def mn_normalized_from_tables(left: Table, left_join_column: str,
                              right: Table, right_join_column: str,
                              left_features: Sequence[str],
                              right_features: Sequence[str],
                              sparse: bool = True) -> NormalizedDataset:
    """Build a two-table M:N normalized matrix ``T = [I_S S, I_R R]`` from tables."""
    i_left, i_right = mn_join_indicators(left, left_join_column, right, right_join_column)
    left_encoded = encode_features(left, columns=list(left_features), sparse=sparse)
    right_encoded = encode_features(right, columns=list(right_features), sparse=sparse)
    matrix = MNNormalizedMatrix([i_left, i_right], [left_encoded.matrix, right_encoded.matrix])
    feature_names = [f"{left.name}.{name}" for name in left_encoded.feature_names]
    feature_names.extend(f"{right.name}.{name}" for name in right_encoded.feature_names)
    return NormalizedDataset(matrix=matrix, feature_names=feature_names)
