"""Schema metadata for the relational substrate.

Schemas are deliberately lightweight: enough structure to describe the
star-schema PK-FK layouts and M:N joins the paper targets, validate them, and
drive indicator-matrix construction -- not a full SQL catalog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """Logical column types used by the feature encoder.

    ``NUMERIC`` columns become a single dense feature; ``CATEGORICAL`` columns
    are one-hot encoded into one sparse feature per distinct value; ``KEY``
    columns identify rows (primary keys) or reference them (foreign keys) and
    are never encoded as features unless explicitly requested; ``TARGET``
    marks the supervised-learning label ``Y``.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    KEY = "key"
    TARGET = "target"


@dataclass(frozen=True)
class Column:
    """A single column: a name plus its logical type."""

    name: str
    ctype: ColumnType = ColumnType.NUMERIC

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge from an entity-table column to an attribute table.

    Attributes
    ----------
    column:
        Name of the foreign-key column in the referencing (entity) table.
    references_table:
        Name of the referenced attribute table.
    references_column:
        Name of the primary-key column in the referenced table.
    """

    column: str
    references_table: str
    references_column: str


@dataclass
class TableSchema:
    """Schema of one table: ordered columns plus key metadata."""

    name: str
    columns: List[Column]
    primary_key: Optional[str] = None
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} is not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"table {self.name!r}: foreign key column {fk.column!r} is not a column"
                )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def feature_columns(self) -> List[Column]:
        """Columns that should be encoded as features (numeric + categorical)."""
        return [c for c in self.columns if c.ctype in (ColumnType.NUMERIC, ColumnType.CATEGORICAL)]

    def target_column(self) -> Optional[Column]:
        targets = [c for c in self.columns if c.ctype is ColumnType.TARGET]
        if len(targets) > 1:
            raise SchemaError(f"table {self.name!r} declares more than one target column")
        return targets[0] if targets else None


@dataclass
class StarSchema:
    """A star schema: one entity table plus one or more attribute tables.

    This mirrors the paper's multi-table setting (Section 3.5): the entity
    table ``S`` has ``q`` foreign keys, each referencing the primary key of an
    attribute table ``R_i``.  The class validates the referential structure and
    exposes the foreign-key edges in a stable order so that indicator matrices
    ``K_1 .. K_q`` and attribute matrices ``R_1 .. R_q`` line up.
    """

    entity: TableSchema
    attributes: Dict[str, TableSchema]

    def __post_init__(self) -> None:
        if not self.entity.foreign_keys:
            raise SchemaError(
                f"entity table {self.entity.name!r} declares no foreign keys; a star schema needs at least one"
            )
        for fk in self.entity.foreign_keys:
            if fk.references_table not in self.attributes:
                raise SchemaError(
                    f"foreign key {fk.column!r} references unknown table {fk.references_table!r}"
                )
            ref = self.attributes[fk.references_table]
            if ref.primary_key is None:
                raise SchemaError(
                    f"attribute table {ref.name!r} must declare a primary key"
                )
            if fk.references_column != ref.primary_key:
                raise SchemaError(
                    f"foreign key {fk.column!r} must reference the primary key of {ref.name!r}"
                )

    @property
    def foreign_keys(self) -> Sequence[ForeignKey]:
        return list(self.entity.foreign_keys)

    @property
    def num_attribute_tables(self) -> int:
        return len(self.entity.foreign_keys)

    def attribute_schema(self, fk: ForeignKey) -> TableSchema:
        return self.attributes[fk.references_table]


# ---------------------------------------------------------------------------
# Declarative snowflake frontend: mappings, joins, schema graphs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Mapping:
    """A ``(table-or-alias, column)`` reference, the atom of join declarations.

    The ``table`` side names either the fact table or a join *alias* (a role a
    dimension table plays in the graph), never a physical table directly --
    which is what lets one shared dimension appear under two roles.
    """

    table: str
    column: str

    def __post_init__(self) -> None:
        if not self.table or not self.column:
            raise SchemaError("a mapping needs both a table/alias and a column")

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


#: Anything :func:`to_mapping` can coerce: ``"table.column"`` strings,
#: ``(table, column)`` pairs, ``{"table": ..., "column": ...}`` dicts, or a
#: :class:`Mapping` itself.
MappingLike = Union["Mapping", str, Sequence[str], Dict[str, str]]


def to_mapping(obj: MappingLike) -> Mapping:
    """Coerce the accepted spellings of a column reference into a :class:`Mapping`."""
    if isinstance(obj, Mapping):
        return obj
    if isinstance(obj, str):
        if "." not in obj:
            raise SchemaError(
                f"mapping string {obj!r} must be of the form 'table.column'"
            )
        table, column = obj.split(".", 1)
        return Mapping(table, column)
    if isinstance(obj, dict):
        try:
            return Mapping(obj["table"], obj["column"])
        except KeyError as exc:
            raise SchemaError(
                f"mapping dict needs 'table' and 'column' keys, got {sorted(obj)}"
            ) from exc
    if isinstance(obj, (tuple, list)) and len(obj) == 2:
        return Mapping(obj[0], obj[1])
    raise SchemaError(f"cannot interpret {obj!r} as a table.column mapping")


@dataclass(frozen=True)
class Join:
    """One directed PK-FK edge of a snowflake graph.

    ``master`` is the foreign-key side (the fact table or an already-joined
    alias -- the latter is what makes a hop attribute -> attribute); ``detail``
    is the primary-key side, the table being joined in.  ``alias`` names the
    role the detail table plays; it defaults to the detail table's name and
    must be unique in the graph, so a shared dimension joined twice gets two
    aliases (following the mappings/joins style of cubes' star schema layer).
    """

    master: Mapping
    detail: Mapping
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "master", to_mapping(self.master))
        object.__setattr__(self, "detail", to_mapping(self.detail))
        if self.alias is None:
            object.__setattr__(self, "alias", self.detail.table)

    def __str__(self) -> str:
        role = f" as {self.alias}" if self.alias != self.detail.table else ""
        return f"{self.master} -> {self.detail}{role}"


class SchemaGraph:
    """A validated snowflake join graph rooted at one fact table.

    The graph is declarative: joins may be listed in any order, each naming
    its master side by fact name or alias.  Construction checks alias
    uniqueness, that every master is reachable, and that the graph is acyclic
    and connected (every alias resolves to a path from the fact table);
    :meth:`resolve_order` returns the joins topologically sorted so builders
    can construct hop indicators masters-first, and :meth:`join_path` gives
    the hop sequence fact -> ... -> alias behind one role.
    """

    def __init__(self, fact: str, joins: Sequence[Join]):
        if not fact:
            raise SchemaError("a schema graph needs a fact table name")
        if not joins:
            raise SchemaError("a schema graph needs at least one join")
        self.fact = fact
        self.joins: List[Join] = [
            j if isinstance(j, Join) else Join(*j) for j in joins
        ]
        self._by_alias: Dict[str, Join] = {}
        for join in self.joins:
            if join.alias == fact:
                raise SchemaError(
                    f"join alias {join.alias!r} collides with the fact table name"
                )
            if join.alias in self._by_alias:
                raise SchemaError(
                    f"duplicate join alias {join.alias!r}; give the shared "
                    "dimension a distinct alias per role"
                )
            self._by_alias[join.alias] = join
        self._order = self._resolve()

    # -- structure -------------------------------------------------------------

    @property
    def aliases(self) -> List[str]:
        """All join aliases in topological (masters-first) order."""
        return [j.alias for j in self._order]

    def join_for(self, alias: str) -> Join:
        try:
            return self._by_alias[alias]
        except KeyError:
            raise SchemaError(
                f"schema graph has no alias {alias!r} "
                f"(known: {sorted(self._by_alias)})"
            ) from None

    def table_for(self, alias: str) -> str:
        """The physical table name behind an alias (the fact maps to itself)."""
        if alias == self.fact:
            return self.fact
        return self.join_for(alias).detail.table

    def _resolve(self) -> List[Join]:
        """Topologically order the joins; raise on unknown masters or cycles."""
        resolved = {self.fact}
        order: List[Join] = []
        pending = list(self.joins)
        while pending:
            ready = [j for j in pending if j.master.table in resolved]
            if not ready:
                unknown = sorted({j.master.table for j in pending}
                                 - set(self._by_alias) - {self.fact})
                if unknown:
                    raise SchemaError(
                        f"join master(s) {unknown} are neither the fact table "
                        f"{self.fact!r} nor a declared alias"
                    )
                raise SchemaError(
                    "schema graph contains a join cycle through aliases "
                    f"{sorted(j.alias for j in pending)}"
                )
            for join in ready:
                resolved.add(join.alias)
                order.append(join)
                pending.remove(join)
        return order

    def resolve_order(self) -> List[Join]:
        """Joins sorted masters-first (declaration order among ready joins)."""
        return list(self._order)

    def join_path(self, alias: str) -> List[Join]:
        """The hop sequence fact -> ... -> alias (outermost hop first)."""
        path: List[Join] = []
        current = alias
        while current != self.fact:
            join = self.join_for(current)
            path.append(join)
            current = join.master.table
        path.reverse()
        return path

    def depth(self, alias: str) -> int:
        """Number of hops between the fact table and *alias*."""
        return len(self.join_path(alias))

    # -- validation against concrete tables ------------------------------------

    def validate_tables(self, tables: Dict[str, object]) -> None:
        """Check that *tables* (name -> Table) can realize this graph.

        Verifies every referenced physical table is present and that each
        join's master/detail columns exist in the corresponding table.
        """
        if self.fact not in tables:
            raise SchemaError(f"fact table {self.fact!r} missing from tables")
        for join in self._order:
            detail_name = join.detail.table
            if detail_name not in tables:
                raise SchemaError(
                    f"join {join}: detail table {detail_name!r} missing from tables"
                )
            master_name = self.table_for(join.master.table)
            master_table = tables[master_name]
            detail_table = tables[detail_name]
            if join.master.column not in master_table:
                raise SchemaError(
                    f"join {join}: master table {master_name!r} has no "
                    f"column {join.master.column!r}"
                )
            if join.detail.column not in detail_table:
                raise SchemaError(
                    f"join {join}: detail table {detail_name!r} has no "
                    f"column {join.detail.column!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        joins = "; ".join(str(j) for j in self._order)
        return f"SchemaGraph(fact={self.fact!r}, joins=[{joins}])"
