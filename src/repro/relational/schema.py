"""Schema metadata for the relational substrate.

Schemas are deliberately lightweight: enough structure to describe the
star-schema PK-FK layouts and M:N joins the paper targets, validate them, and
drive indicator-matrix construction -- not a full SQL catalog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """Logical column types used by the feature encoder.

    ``NUMERIC`` columns become a single dense feature; ``CATEGORICAL`` columns
    are one-hot encoded into one sparse feature per distinct value; ``KEY``
    columns identify rows (primary keys) or reference them (foreign keys) and
    are never encoded as features unless explicitly requested; ``TARGET``
    marks the supervised-learning label ``Y``.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    KEY = "key"
    TARGET = "target"


@dataclass(frozen=True)
class Column:
    """A single column: a name plus its logical type."""

    name: str
    ctype: ColumnType = ColumnType.NUMERIC

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge from an entity-table column to an attribute table.

    Attributes
    ----------
    column:
        Name of the foreign-key column in the referencing (entity) table.
    references_table:
        Name of the referenced attribute table.
    references_column:
        Name of the primary-key column in the referenced table.
    """

    column: str
    references_table: str
    references_column: str


@dataclass
class TableSchema:
    """Schema of one table: ordered columns plus key metadata."""

    name: str
    columns: List[Column]
    primary_key: Optional[str] = None
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} is not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"table {self.name!r}: foreign key column {fk.column!r} is not a column"
                )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def feature_columns(self) -> List[Column]:
        """Columns that should be encoded as features (numeric + categorical)."""
        return [c for c in self.columns if c.ctype in (ColumnType.NUMERIC, ColumnType.CATEGORICAL)]

    def target_column(self) -> Optional[Column]:
        targets = [c for c in self.columns if c.ctype is ColumnType.TARGET]
        if len(targets) > 1:
            raise SchemaError(f"table {self.name!r} declares more than one target column")
        return targets[0] if targets else None


@dataclass
class StarSchema:
    """A star schema: one entity table plus one or more attribute tables.

    This mirrors the paper's multi-table setting (Section 3.5): the entity
    table ``S`` has ``q`` foreign keys, each referencing the primary key of an
    attribute table ``R_i``.  The class validates the referential structure and
    exposes the foreign-key edges in a stable order so that indicator matrices
    ``K_1 .. K_q`` and attribute matrices ``R_1 .. R_q`` line up.
    """

    entity: TableSchema
    attributes: Dict[str, TableSchema]

    def __post_init__(self) -> None:
        if not self.entity.foreign_keys:
            raise SchemaError(
                f"entity table {self.entity.name!r} declares no foreign keys; a star schema needs at least one"
            )
        for fk in self.entity.foreign_keys:
            if fk.references_table not in self.attributes:
                raise SchemaError(
                    f"foreign key {fk.column!r} references unknown table {fk.references_table!r}"
                )
            ref = self.attributes[fk.references_table]
            if ref.primary_key is None:
                raise SchemaError(
                    f"attribute table {ref.name!r} must declare a primary key"
                )
            if fk.references_column != ref.primary_key:
                raise SchemaError(
                    f"foreign key {fk.column!r} must reference the primary key of {ref.name!r}"
                )

    @property
    def foreign_keys(self) -> Sequence[ForeignKey]:
        return list(self.entity.foreign_keys)

    @property
    def num_attribute_tables(self) -> int:
        return len(self.entity.foreign_keys)

    def attribute_schema(self, fk: ForeignKey) -> TableSchema:
        return self.attributes[fk.references_table]
