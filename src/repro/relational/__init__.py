"""Relational substrate: tables, schemas, joins, and feature encoding.

The paper assumes the input arrives as a *normalized* relational schema -- an
entity table ``S`` with one or more foreign keys into attribute tables
``R1..Rq`` (star-schema PK-FK), or two tables related by a general M:N
equi-join.  This subpackage provides everything needed to go from raw tabular
data to the matrices the Morpheus core consumes:

* :class:`repro.relational.table.Table` -- a small column-oriented table with
  typed columns and schema metadata.
* :mod:`repro.relational.schema` -- column/key/schema descriptors and
  validation.
* :mod:`repro.relational.join` -- PK-FK joins, star-schema joins and M:N
  equi-joins, including construction of the sparse indicator matrices ``K``
  and ``(IS, IR)`` that define the normalized matrix.
* :mod:`repro.relational.encoding` -- one-hot encoding of categorical columns
  into sparse feature matrices (how the paper's "real" datasets become sparse
  matrices, Table 6).
* :mod:`repro.relational.csv_io` -- CSV reading/writing so the quickstart
  mirrors the paper's R snippet (``read.csv`` followed by ``sparseMatrix``).
"""

from repro.relational.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Join,
    Mapping,
    SchemaGraph,
    StarSchema,
    TableSchema,
    to_mapping,
)
from repro.relational.table import Table
from repro.relational.join import (
    JoinResult,
    chained_indicator,
    pk_fk_indicator,
    join_pk_fk,
    join_star,
    mn_join_indicators,
    join_mn,
    drop_unreferenced,
)
from repro.relational.encoding import OneHotEncoder, encode_features, FeatureMatrix
from repro.relational.csv_io import (
    read_csv,
    read_csv_chunks,
    stream_normalized_batches,
    write_csv,
)
from repro.relational.pipeline import (
    NormalizedDataset,
    normalized_from_schema,
    normalized_from_tables,
    mn_normalized_from_tables,
)

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Join",
    "Mapping",
    "SchemaGraph",
    "TableSchema",
    "StarSchema",
    "Table",
    "to_mapping",
    "JoinResult",
    "chained_indicator",
    "pk_fk_indicator",
    "join_pk_fk",
    "join_star",
    "mn_join_indicators",
    "join_mn",
    "drop_unreferenced",
    "OneHotEncoder",
    "encode_features",
    "FeatureMatrix",
    "read_csv",
    "read_csv_chunks",
    "stream_normalized_batches",
    "write_csv",
    "NormalizedDataset",
    "normalized_from_schema",
    "normalized_from_tables",
    "mn_normalized_from_tables",
]
