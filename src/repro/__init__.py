"""Morpheus: factorized linear algebra over normalized data.

A from-scratch Python reproduction of "Towards Linear Algebra over Normalized
Data" (Chen, Kumar, Naughton, Patel; VLDB 2017).  The top-level namespace
re-exports the public API most users need:

>>> from repro import NormalizedMatrix, morpheus, LogisticRegressionGD
>>> # build a normalized matrix from base-table matrices S, K, R ...
>>> # and train any of the LA-based ML algorithms on it directly.

See ``README.md`` for a quickstart, ``docs/architecture.md`` for the layer
map, and ``docs/paper_map.md`` for the paper-section to code inventory.
"""

# obs first: it depends only on stdlib+numpy and every other layer's
# instrumentation imports it, so loading it up front keeps the import
# graph acyclic by construction.
from repro import obs
from repro.core import (
    NormalizedMatrix,
    MNNormalizedMatrix,
    materialize,
    morpheus,
    should_factorize,
    DecisionRule,
    FactorizedCache,
    LazyExpr,
    as_lazy,
    Plan,
    Planner,
    WorkloadDescriptor,
    NormalizedBatchIterator,
    StreamedMatrix,
)
from repro.core.decision import morpheus_mn
from repro.ml import (
    LogisticRegressionGD,
    LinearRegressionNE,
    LinearRegressionGD,
    LinearRegressionCofactor,
    KMeans,
    GNMF,
)
from repro.relational import Table, read_csv, read_csv_chunks, stream_normalized_batches
from repro.la import ChunkedMatrix
from repro.serve import FactorizedScorer, ModelRegistry, ScoringService

__version__ = "1.9.0"

__all__ = [
    "obs",
    "NormalizedMatrix",
    "MNNormalizedMatrix",
    "materialize",
    "morpheus",
    "morpheus_mn",
    "should_factorize",
    "DecisionRule",
    "FactorizedCache",
    "LazyExpr",
    "as_lazy",
    "Plan",
    "Planner",
    "WorkloadDescriptor",
    "LogisticRegressionGD",
    "LinearRegressionNE",
    "LinearRegressionGD",
    "LinearRegressionCofactor",
    "KMeans",
    "GNMF",
    "NormalizedBatchIterator",
    "StreamedMatrix",
    "FactorizedScorer",
    "ModelRegistry",
    "ScoringService",
    "Table",
    "read_csv",
    "read_csv_chunks",
    "stream_normalized_batches",
    "ChunkedMatrix",
    "__version__",
]
