"""K-Means clustering expressed in bulk linear algebra (Algorithms 7 and 15).

The per-iteration data-intensive work consists of

* the squared-distance computation, which needs ``rowSums(T ^ 2)`` once and a
  full matrix-matrix LMM ``T C`` each iteration, and
* the centroid update, which needs the transposed LMM ``T^T A``.

All three operators have factorized rewrites, which is why K-Means benefits
from normalized data even though it also performs extra regular-matrix work
(the assignment step), explaining the more modest speed-ups in Figure 5(c).

One deliberate deviation from the paper's pseudo-code: the paper assigns
points with a boolean equality test ``A = (D == rowMin(D))``, which can assign
a point to several clusters when distances tie.  We break ties by the lowest
cluster index (an argmin), which keeps the assignment matrix a proper 0/1
partition and makes factorized and materialized runs bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.la import generic
from repro.la.generic import to_dense_result
from repro.ml.base import (
    IterativeEstimator,
    fit_telemetry,
    unwrap_lazy,
    validate_predict_data,
)
from repro.ml.export import ServingExport


class KMeans(IterativeEstimator):
    """Lloyd's algorithm written as bulk LA over the data matrix.

    Attributes
    ----------
    centroids_:
        ``(d, k)`` matrix of cluster centroids (centroids are columns, matching
        the paper's layout).
    labels_:
        ``(n,)`` integer cluster assignment of each training row.
    inertia_:
        Final within-cluster sum of squared distances.
    """

    def __init__(self, num_clusters: int = 10, max_iter: int = 20,
                 seed: Optional[int] = 0, track_history: bool = False,
                 engine: str = "eager", n_jobs: Optional[int] = None,
                 solver: str = "batch", batch_size: Optional[int] = None,
                 shuffle: bool = False, memory_budget: Optional[float] = None):
        super().__init__(max_iter=max_iter, step_size=1.0, seed=seed,
                         track_history=track_history, engine=engine, n_jobs=n_jobs,
                         solver=solver, batch_size=batch_size, shuffle=shuffle,
                         memory_budget=memory_budget)
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = int(num_clusters)
        self.centroids_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        #: streaming sufficient statistics (per-cluster sums/counts) of the
        #: mini-batch path; reset at every sgd epoch (see partial_fit).
        self._stream_sums: Optional[np.ndarray] = None
        self._stream_counts: Optional[np.ndarray] = None

    def _initial_centroids(self, data) -> np.ndarray:
        """Random Gaussian initialization, seeded so F and M runs coincide."""
        d = data.shape[1]
        rng = self._rng()
        return rng.standard_normal((d, self.num_clusters))

    def _workload_descriptor(self):
        from repro.core.planner import WorkloadDescriptor

        return WorkloadDescriptor.kmeans(self.num_clusters, self.max_iter)

    @fit_telemetry
    def fit(self, data, initial_centroids: Optional[np.ndarray] = None) -> "KMeans":
        engine, data = self._resolve_engine(data)
        n = data.shape[0]
        k = self.num_clusters
        centroids = (np.asarray(initial_centroids, dtype=np.float64)
                     if initial_centroids is not None else self._initial_centroids(data))
        if centroids.shape != (data.shape[1], k):
            raise ValueError(
                f"initial centroids must have shape ({data.shape[1]}, {k}), got {centroids.shape}"
            )

        self.history_ = []
        self.lazy_cache_ = None

        if self._use_minibatch():
            return self._fit_sgd(unwrap_lazy(data), centroids)

        if engine == "lazy":
            # The lazy path writes the invariant terms *inside* the loop and
            # lets the FactorizedCache hoist them: rowSums(T ^ 2), the doubled
            # matrix 2 T, and the transposed view are each computed once and
            # served as cache hits on every later iteration.  The two
            # rank-one products with all-ones vectors are replaced by NumPy
            # broadcasting, which replicates the exact same values.
            lazy_t = self._lazy_data(data)
            norms_node = (lazy_t ** 2).rowsums()
            twice_node = 2 * lazy_t
            transposed_node = lazy_t.T

            def distances_for(centroids):
                centroid_norms = np.sum(centroids ** 2, axis=0, keepdims=True)   # 1 x k
                cross_term = to_dense_result((twice_node @ centroids).evaluate())  # n x k LMM
                return to_dense_result(norms_node.evaluate()) + centroid_norms - cross_term

            def sums_for(assignment):
                return to_dense_result((transposed_node @ assignment).evaluate())
        else:
            data = unwrap_lazy(data)
            ones_row = np.ones((1, k))
            ones_col = np.ones((n, 1))
            # Pre-compute the per-point squared norms: rowSums(T ^ 2), factorized.
            point_norms = generic.rowsums(generic.square(data)) @ ones_row
            data_twice = 2 * data

            def distances_for(centroids):
                centroid_norms = np.sum(centroids ** 2, axis=0, keepdims=True)  # 1 x k
                cross_term = to_dense_result(data_twice @ centroids)            # n x k LMM
                return point_norms + ones_col @ centroid_norms - cross_term

            def sums_for(assignment):
                return to_dense_result(data.T @ assignment)

        assignment = None
        distances = None
        for _ in range(self.max_iter):
            distances = distances_for(centroids)
            labels = np.argmin(distances, axis=1)
            assignment = np.zeros((n, k))
            assignment[np.arange(n), labels] = 1.0
            counts = assignment.sum(axis=0, keepdims=True)                   # 1 x k
            sums = sums_for(assignment)                                      # d x k, factorized
            # Keep the previous centroid for empty clusters instead of dividing by zero.
            safe_counts = np.where(counts > 0, counts, 1.0)
            updated = sums / safe_counts
            centroids = np.where(counts > 0, updated, centroids)
            if self.track_history:
                self.history_.append(float(np.sum(distances[np.arange(n), labels])))

        self.centroids_ = centroids
        self.labels_ = np.argmin(distances, axis=1) if distances is not None else None
        if distances is not None:
            self.inertia_ = float(np.sum(distances[np.arange(n), self.labels_]))
        return self

    @staticmethod
    def _distances_to(data, centroids: np.ndarray) -> np.ndarray:
        """Squared distances of every row of *data* to every centroid column.

        The same ``rowSums(T^2) + |c|^2 - 2 T c`` expansion the batch fit
        uses, so a mini-batch covering all rows reproduces the full-batch
        distance matrix bit for bit.
        """
        n = data.shape[0]
        k = centroids.shape[1]
        point_norms = generic.rowsums(generic.square(data)) @ np.ones((1, k))
        centroid_norms = np.sum(centroids ** 2, axis=0, keepdims=True)
        cross_term = to_dense_result((2 * data) @ centroids)
        return point_norms + np.ones((n, 1)) @ centroid_norms - cross_term

    def _reset_stream(self) -> None:
        """Forget the accumulated per-cluster sums/counts (new sgd epoch)."""
        self._stream_sums = None
        self._stream_counts = None

    def partial_fit(self, data) -> "KMeans":
        """One incremental mini-batch update of the centroids.

        Assigns the batch rows to the nearest current centroid, folds the
        batch's per-cluster sums and counts into the streaming statistics
        accumulated since the last epoch (or :meth:`_reset_stream`), and
        moves every touched centroid to the mean of the points seen so far;
        untouched clusters keep their centroid.  Centroids initialize from
        the seeded RNG on the first call, so factorized and materialized
        streams start identically.  With one batch covering every row this
        is exactly one Lloyd iteration.
        """
        data = self._dispatch_batch(unwrap_lazy(data))
        k = self.num_clusters
        n = data.shape[0]
        if self.centroids_ is None:
            self.centroids_ = self._initial_centroids(data)
        if self._stream_sums is None:
            self._stream_sums = np.zeros((data.shape[1], k))
            self._stream_counts = np.zeros((1, k))
        distances = self._distances_to(data, self.centroids_)
        labels = np.argmin(distances, axis=1)
        assignment = np.zeros((n, k))
        assignment[np.arange(n), labels] = 1.0
        self._stream_sums = self._stream_sums + to_dense_result(data.T @ assignment)
        self._stream_counts = self._stream_counts + assignment.sum(axis=0, keepdims=True)
        counts = self._stream_counts
        safe_counts = np.where(counts > 0, counts, 1.0)
        updated = self._stream_sums / safe_counts
        self.centroids_ = np.where(counts > 0, updated, self.centroids_)
        self.labels_ = labels
        self._last_batch_inertia = float(np.sum(distances[np.arange(n), labels]))
        return self

    def _fit_sgd(self, data, centroids: np.ndarray) -> "KMeans":
        """Mini-batch K-Means: ``max_iter`` epochs of streamed Lloyd updates.

        Every epoch resets the streaming statistics and replays the batches
        through :meth:`partial_fit`; a final streaming pass assigns every row
        under the learned centroids (so ``labels_``/``inertia_`` reflect the
        *final* model -- the batch solver reports the assignment of its last
        iteration's distance matrix instead).
        """
        self.centroids_ = centroids
        batches = self._stream_batches(data)
        for _ in range(self.max_iter):
            self._reset_stream()
            epoch_inertia = 0.0
            for batch in batches:
                self.partial_fit(batch.data)
                epoch_inertia += self._last_batch_inertia
            if self.track_history:
                self.history_.append(epoch_inertia)
        # Final streamed assignment pass (fixed centroids, original row order).
        labels = np.empty(data.shape[0], dtype=np.int64)
        inertia = 0.0
        from repro.core.stream import NormalizedBatchIterator

        for batch in NormalizedBatchIterator(data, batch_size=batches.batch_size):
            distances = self._distances_to(self._dispatch_batch(batch.data),
                                           self.centroids_)
            batch_labels = np.argmin(distances, axis=1)
            labels[batch.indices] = batch_labels
            inertia += float(np.sum(distances[np.arange(batch.num_rows), batch_labels]))
        self.labels_ = labels
        self.inertia_ = inertia
        return self

    def predict(self, data) -> np.ndarray:
        """Assign new rows to the nearest learned centroid."""
        if self.centroids_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.centroids_.shape[0], "KMeans.predict")
        distances = self._distances_to(data, self.centroids_)
        return np.argmin(distances, axis=1)

    def export_weights(self) -> ServingExport:
        """Export the centroids as a servable linear map.

        The weight matrix is the ``(d, k)`` centroid matrix; the offsets row
        stores the squared centroid norms, so cluster assignment is
        ``argmin(offsets - 2 * (T @ centroids))`` -- the per-row norm
        ``||t||^2`` is constant within a row and drops out of the argmin.
        """
        if self.centroids_ is None:
            raise RuntimeError("KMeans.export_weights: model is not fitted")
        norms = np.sum(self.centroids_ ** 2, axis=0, keepdims=True)
        return ServingExport("kmeans", self.centroids_, offsets=norms,
                             metadata={"num_clusters": self.num_clusters})
