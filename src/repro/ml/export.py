"""Model export hooks: trained estimators as servable linear maps.

Every algorithm in this package scores new data through one linear map over
the data matrix -- ``T @ coef_`` for the regressions, ``T @ centroids`` for
the K-Means assignment (the row norm ``||t||^2`` is constant per row and
drops out of the argmin), ``T @ (H pinv(H^T H))`` for the GNMF least-squares
projection.  That shared structure is what lets the serving subsystem
(:mod:`repro.serve`) push scoring through the joins: the weight matrix is
sliced by the column segments of the normalized schema and each attribute
table's slice is precomputed into per-row partial scores.

:class:`ServingExport` is the exchange format: the ``(d, m)`` weight matrix,
an optional per-output offset row, the model *kind* (which selects the
prediction head) and JSON-safe metadata.  Each estimator exposes it via an
``export_weights()`` hook; :func:`export_model` is the duck-typed entry
point the scorer and the registry use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ServingError

#: Model kinds with a defined prediction head (see ``apply_head`` below).
KINDS = ("linear_regression", "logistic_regression", "kmeans", "gnmf")


@dataclass
class ServingExport:
    """A trained model reduced to the linear map the serving layer needs.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`; selects the prediction head applied on top of
        the raw scores ``T @ weights``.
    weights:
        Dense ``(d, m)`` weight matrix -- the only part that multiplies the
        data matrix, and therefore the only part the factorized scorer
        slices by column segment.
    offsets:
        Optional ``(1, m)`` per-output offsets (K-Means stores the squared
        centroid norms here).
    metadata:
        JSON-safe extras (hyperparameters worth keeping with the weights).
    fingerprint / registry_version:
        Filled in by the model registry on load: the schema fingerprint the
        weights were saved under, and the registry version number.
    """

    kind: str
    weights: np.ndarray
    offsets: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    fingerprint: Optional[str] = None
    registry_version: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServingError(f"unknown model kind {self.kind!r}; expected one of {KINDS}")
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.ndim == 1:
            self.weights = self.weights.reshape(-1, 1)
        if self.weights.ndim != 2:
            raise ServingError(f"weights must be 2-D, got ndim={self.weights.ndim}")
        if self.offsets is not None:
            self.offsets = np.asarray(self.offsets, dtype=np.float64).reshape(1, -1)
            if self.offsets.shape[1] != self.weights.shape[1]:
                raise ServingError(
                    f"offsets have {self.offsets.shape[1]} outputs but weights have "
                    f"{self.weights.shape[1]}"
                )
        elif self.kind == "kmeans":
            # The assignment head needs the centroid norms; failing here beats
            # a TypeError on the first request.
            raise ServingError("kind 'kmeans' requires the squared-norm offsets row")

    @property
    def n_features(self) -> int:
        return int(self.weights.shape[0])

    @property
    def n_outputs(self) -> int:
        return int(self.weights.shape[1])


def export_model(model) -> ServingExport:
    """Export any fitted estimator through its ``export_weights()`` hook."""
    hook = getattr(model, "export_weights", None)
    if hook is None:
        raise ServingError(
            f"{type(model).__name__} does not define export_weights(); "
            "only the four LA-based ML algorithms are servable"
        )
    return hook()


def apply_head(export: ServingExport, raw: np.ndarray, head: str) -> np.ndarray:
    """Post-process raw scores ``T @ weights`` into the model's prediction.

    ``head="score"`` returns the raw scores unchanged for every kind (GNMF's
    raw scores already *are* the projection coefficients).  ``"predict"``
    applies the kind's decision rule; ``"predict_proba"`` is defined only
    for logistic regression.
    """
    if head == "score":
        return raw
    if head == "predict_proba":
        if export.kind != "logistic_regression":
            raise ServingError(f"predict_proba is not defined for kind {export.kind!r}")
        from repro.ml.metrics import sigmoid

        return sigmoid(raw)
    if head != "predict":
        raise ServingError(f"unknown prediction head {head!r}")
    if export.kind == "logistic_regression":
        return np.where(raw >= 0.0, 1.0, -1.0)
    if export.kind == "kmeans":
        # argmin_k ||t - c_k||^2 = argmin_k (||c_k||^2 - 2 t.c_k): the row
        # norm is constant per row, so assignment needs only the dot products.
        return np.argmin(export.offsets - 2.0 * raw, axis=1)
    return raw  # linear_regression predictions and gnmf projections are the scores
