"""Logistic regression with batch gradient descent (paper Algorithms 3 and 4).

The data-intensive work per iteration is one left multiplication ``T w`` and
one transposed left multiplication ``T^T p`` -- exactly the two operators whose
factorized rewrites (LMM and RMM of the transposed normalized matrix) drive
the speed-ups in Figure 5(a) and Table 7.

Two update rules are provided:

* ``update="paper"`` -- the literal update of Algorithm 3,
  ``w += alpha * T^T (Y / (1 + exp(T w)))``, which is what the paper times.
* ``update="exact"`` -- the exact gradient-ascent update for labels in
  ``{-1, +1}``, ``w += alpha * T^T (Y / (1 + exp(Y * (T w))))``.  It has the
  same LA structure (and hence the same cost) but better statistical
  behaviour, so the examples use it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.la import kernels
from repro.la.generic import to_dense_result
from repro.ml.base import (
    IterativeEstimator,
    as_column,
    fit_telemetry,
    check_rows_match,
    clip_scores,
    sigmoid,
    unwrap_lazy,
    validate_predict_data,
)
from repro.ml.export import ServingExport


class LogisticRegressionGD(IterativeEstimator):
    """Binary logistic regression trained with full-batch gradient descent.

    Attributes
    ----------
    coef_:
        Learned weight vector of shape ``(d, 1)``.
    history_:
        Per-iteration negative log-likelihood when ``track_history`` is set.
    """

    def __init__(self, max_iter: int = 20, step_size: float = 1e-4,
                 seed: Optional[int] = 0, track_history: bool = False,
                 update: str = "paper", engine: str = "eager", n_jobs: Optional[int] = None,
                 solver: str = "batch", batch_size: Optional[int] = None,
                 shuffle: bool = False, memory_budget: Optional[float] = None):
        super().__init__(max_iter=max_iter, step_size=step_size, seed=seed,
                         track_history=track_history, engine=engine, n_jobs=n_jobs,
                         solver=solver, batch_size=batch_size, shuffle=shuffle,
                         memory_budget=memory_budget)
        if update not in ("paper", "exact"):
            raise ValueError("update must be 'paper' or 'exact'")
        self.update = update
        self.coef_: Optional[np.ndarray] = None

    def _workload_descriptor(self):
        from repro.core.planner import WorkloadDescriptor

        return WorkloadDescriptor.logistic_regression(self.max_iter)

    @fit_telemetry
    def fit(self, data, target, initial_weights: Optional[np.ndarray] = None
            ) -> "LogisticRegressionGD":
        """Train on the data matrix *data* (regular or normalized) and labels *target*.

        Labels are expected in ``{-1, +1}`` (use
        :func:`repro.ml.preprocessing.binarize_labels` to convert 0/1 labels).
        """
        y = as_column(target)
        engine, data = self._resolve_engine(data)
        check_rows_match(data, y, "LogisticRegressionGD.fit")
        d = data.shape[1]
        if initial_weights is not None:
            w = as_column(initial_weights).copy()
        else:
            w = np.zeros((d, 1))
        alpha = self.step_size
        self.history_ = []
        self.lazy_cache_ = None

        if self._use_minibatch():
            return self._fit_sgd(unwrap_lazy(data), y, w)

        if engine == "lazy":
            # Logistic regression has no data-sized join-invariant term (the
            # gradient is nonlinear in w), so the memoized node is the
            # transposed view T^T -- a flag flip sharing the base matrices,
            # costing no extra memory -- retrieved as a cache hit on every
            # iteration after the first.  The arithmetic is identical to the
            # eager closures, so coefficients match bit for bit.
            lazy_t = self._lazy_data(data)
            transposed_node = lazy_t.T

            def scores_for(w):
                return to_dense_result((lazy_t @ w).evaluate())

            def gradient_for(p):
                return to_dense_result((transposed_node @ p).evaluate())
        else:
            data = unwrap_lazy(data)

            def scores_for(w):
                return to_dense_result(data @ w)

            def gradient_for(p):
                return to_dense_result(data.T @ p)

        for _ in range(self.max_iter):
            scores = scores_for(w)
            # Clip the exponent to keep exp finite; beyond +/-500 the factor is
            # numerically 0 or 1 anyway, so the update is unchanged.
            if self.update == "paper":
                p = y / (1.0 + np.exp(clip_scores(scores)))
            else:
                p = y / (1.0 + np.exp(clip_scores(y * scores)))
            w = w + alpha * gradient_for(p)
            if self.track_history:
                self.history_.append(self._negative_log_likelihood(scores, y))

        self.coef_ = w
        return self

    def _minibatch_step(self, data, y: np.ndarray, w: np.ndarray):
        """One mini-batch ascent step; returns the new weights and the batch scores."""
        return kernels.logistic_sgd_step(data, y, w, self.step_size, self.update)

    def _fit_sgd(self, data, y: np.ndarray, w: np.ndarray) -> "LogisticRegressionGD":
        """Mini-batch SGD over factorized row batches; see
        :meth:`LinearRegressionGD._fit_sgd` for the streaming contract."""
        batches = self._stream_batches(data, y)
        for _ in range(self.max_iter):
            epoch_nll = 0.0
            for batch in batches:
                w, scores = self._minibatch_step(self._dispatch_batch(batch.data),
                                                 batch.target, w)
                if self.track_history:
                    epoch_nll += self._negative_log_likelihood(scores, batch.target)
            if self.track_history:
                self.history_.append(epoch_nll)
        self.coef_ = w
        return self

    def partial_fit(self, data, target) -> "LogisticRegressionGD":
        """One incremental ascent step on a single mini-batch (labels in ``{-1, +1}``).

        Initializes ``coef_`` to zeros on the first call; factorized and
        materialized batches produce matching updates to numerical precision.
        """
        data = self._dispatch_batch(unwrap_lazy(data))
        y = as_column(target)
        check_rows_match(data, y, "LogisticRegressionGD.partial_fit")
        if self.coef_ is None:
            self.coef_ = np.zeros((data.shape[1], 1))
        self.coef_, scores = self._minibatch_step(data, y, self.coef_)
        if self.track_history:
            self.history_.append(self._negative_log_likelihood(scores, y))
        return self

    @staticmethod
    def _negative_log_likelihood(scores: np.ndarray, y: np.ndarray) -> float:
        margins = y * scores
        return float(np.sum(np.log1p(np.exp(-clip_scores(margins)))))

    def decision_function(self, data) -> np.ndarray:
        """Raw scores ``T w`` for the given data matrix."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.coef_.shape[0],
                                     "LogisticRegressionGD.decision_function")
        return to_dense_result(data @ self.coef_)

    def export_weights(self) -> ServingExport:
        """Export the learned weights for the serving subsystem."""
        if self.coef_ is None:
            raise RuntimeError("LogisticRegressionGD.export_weights: model is not fitted")
        return ServingExport("logistic_regression", self.coef_,
                             metadata={"update": self.update})

    def predict_proba(self, data) -> np.ndarray:
        """Probability of the positive class for each row."""
        return sigmoid(self.decision_function(data))

    def predict(self, data) -> np.ndarray:
        """Predicted labels in ``{-1, +1}``."""
        return np.where(self.decision_function(data) >= 0.0, 1.0, -1.0)
