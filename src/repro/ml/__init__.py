"""ML algorithms expressed in linear algebra.

The four algorithms the paper factorizes (Section 4) are implemented here,
each written *once* against the generic LA functions in
:mod:`repro.la.generic` and the operand's operator overloads.  Passing a plain
(materialized) matrix gives the standard single-table version; passing a
:class:`~repro.core.normalized_matrix.NormalizedMatrix` (or
:class:`~repro.core.mn_matrix.MNNormalizedMatrix`) gives the automatically
factorized version -- no algorithm-specific rewriting is required, which is
the paper's central claim.

* :class:`~repro.ml.logistic_regression.LogisticRegressionGD`
* :class:`~repro.ml.linear_regression.LinearRegressionNE` (normal equations),
  :class:`~repro.ml.linear_regression.LinearRegressionGD` (gradient descent)
  and :class:`~repro.ml.linear_regression.LinearRegressionCofactor`
  (the Schleich et al. co-factor + AdaGrad hybrid)
* :class:`~repro.ml.kmeans.KMeans`
* :class:`~repro.ml.gnmf.GNMF`
"""

from repro.ml.logistic_regression import LogisticRegressionGD
from repro.ml.linear_regression import (
    LinearRegressionNE,
    LinearRegressionGD,
    LinearRegressionCofactor,
)
from repro.ml.kmeans import KMeans
from repro.ml.gnmf import GNMF
from repro.ml.export import ServingExport, apply_head, export_model
from repro.ml.metrics import (
    accuracy,
    clip_scores,
    log_loss,
    mean_squared_error,
    root_mean_squared_error,
    r2_score,
    sigmoid,
    within_cluster_ss,
    reconstruction_error,
)
from repro.ml.preprocessing import binarize_labels, standardize, train_test_split_rows

__all__ = [
    "LogisticRegressionGD",
    "LinearRegressionNE",
    "LinearRegressionGD",
    "LinearRegressionCofactor",
    "KMeans",
    "GNMF",
    "ServingExport",
    "apply_head",
    "export_model",
    "accuracy",
    "clip_scores",
    "sigmoid",
    "log_loss",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "within_cluster_ss",
    "reconstruction_error",
    "binarize_labels",
    "standardize",
    "train_test_split_rows",
]
