"""Small preprocessing helpers shared by the examples and benchmarks.

These operate on *regular* matrices and targets (base-table feature matrices
before they are wrapped in a normalized matrix), mirroring how the paper's
experiments binarize the numeric targets of the real datasets for logistic
regression and keep them as-is for K-Means/GNMF.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError


def binarize_labels(values, threshold: Optional[float] = None) -> np.ndarray:
    """Map a numeric target to ``{-1, +1}`` by thresholding (default: the median).

    This is how the paper turns the numeric targets of the real datasets into
    binary classification labels for logistic regression.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ShapeError("cannot binarize an empty target")
    cut = float(np.median(arr)) if threshold is None else float(threshold)
    return np.where(arr > cut, 1.0, -1.0).reshape(-1, 1)


def standardize(matrix, epsilon: float = 1e-12) -> np.ndarray:
    """Column-wise standardization (zero mean, unit variance) of a dense matrix."""
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise ShapeError("standardize expects a 2-D matrix")
    mean = dense.mean(axis=0, keepdims=True)
    std = dense.std(axis=0, keepdims=True)
    return (dense - mean) / (std + epsilon)


def train_test_split_rows(num_rows: int, test_fraction: float = 0.2,
                          seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Return shuffled train/test row-index arrays.

    Splitting happens on the *entity table* rows so the attribute tables (and
    hence the normalized matrix structure) are untouched.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if num_rows <= 1:
        raise ShapeError("need at least two rows to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_rows)
    cut = max(1, int(round(num_rows * test_fraction)))
    test_idx = np.sort(order[:cut])
    train_idx = np.sort(order[cut:])
    return train_idx, test_idx
