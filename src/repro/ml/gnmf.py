"""Gaussian non-negative matrix factorization (Algorithms 8 and 16).

GNMF factorizes the non-negative data matrix ``T`` (``n x d``) into
non-negative factors ``W`` (``n x r``) and ``H`` (``d x r``) using the
classical multiplicative updates::

    H <- H * (T^T W) / (H crossprod(W))
    W <- W * (T  H) / (W crossprod(H))

Each iteration performs one RMM-style product ``T^T W`` and one LMM ``T H``
over the data matrix -- both factorized when ``T`` is normalized -- plus small
``r x r`` regular products, which is why GNMF's speed-ups in Figure 5(d) and
Table 7 are positive but smaller than logistic/linear regression's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.la import ops as la_ops
from repro.la.generic import to_dense_result
from repro.ml.base import (
    IterativeEstimator,
    fit_telemetry,
    unwrap_lazy,
    validate_predict_data,
)
from repro.ml.export import ServingExport


class GNMF(IterativeEstimator):
    """Non-negative matrix factorization with multiplicative updates.

    Attributes
    ----------
    w_:
        Learned ``(n, r)`` row-factor matrix.
    h_:
        Learned ``(d, r)`` column-factor (topic) matrix.
    """

    def __init__(self, rank: int = 5, max_iter: int = 20, seed: Optional[int] = 0,
                 track_history: bool = False, epsilon: float = 1e-12,
                 engine: str = "eager", n_jobs: Optional[int] = None,
                 solver: str = "batch", batch_size: Optional[int] = None,
                 shuffle: bool = False, memory_budget: Optional[float] = None):
        super().__init__(max_iter=max_iter, step_size=1.0, seed=seed,
                         track_history=track_history, engine=engine, n_jobs=n_jobs,
                         solver=solver, batch_size=batch_size, shuffle=shuffle,
                         memory_budget=memory_budget)
        if rank <= 0:
            raise ValueError("rank must be positive")
        self.rank = int(rank)
        self.epsilon = float(epsilon)
        self.w_: Optional[np.ndarray] = None
        self.h_: Optional[np.ndarray] = None
        #: persistent RNG of the standalone partial_fit stream (appends W rows
        #: for never-before-seen batches); reset when h_ is None.
        self._stream_rng: Optional[np.random.Generator] = None
        #: (h_ identity, projection matrix) pair backing _projection_matrix.
        self._projection_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _initial_factors(self, n: int, d: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = self._rng()
        w = rng.uniform(0.1, 1.0, size=(n, self.rank))
        h = rng.uniform(0.1, 1.0, size=(d, self.rank))
        return w, h

    def _workload_descriptor(self):
        from repro.core.planner import WorkloadDescriptor

        return WorkloadDescriptor.gnmf(self.rank, self.max_iter)

    @fit_telemetry
    def fit(self, data, initial_w: Optional[np.ndarray] = None,
            initial_h: Optional[np.ndarray] = None) -> "GNMF":
        """Run the multiplicative updates; *data* must be element-wise non-negative."""
        engine, data = self._resolve_engine(data)
        n, d = data.shape
        w, h = self._initial_factors(n, d)
        if initial_w is not None:
            w = np.asarray(initial_w, dtype=np.float64).copy()
        if initial_h is not None:
            h = np.asarray(initial_h, dtype=np.float64).copy()
        if w.shape != (n, self.rank) or h.shape != (d, self.rank):
            raise ValueError("initial factors have incompatible shapes")

        self.history_ = []
        self.lazy_cache_ = None

        if self._use_minibatch():
            return self._fit_sgd(unwrap_lazy(data), w, h)

        if engine == "lazy":
            # Both numerators run through the lazy layer; the transposed view
            # of the data matrix is the join-invariant node reused (as a cache
            # hit) by the H update of every iteration after the first.
            lazy_t = self._lazy_data(data)
            transposed_node = lazy_t.T
            if self.track_history:
                data = unwrap_lazy(data)  # concrete operand for the objective

            def numerator_h_for(w):
                return to_dense_result((transposed_node @ w).evaluate())

            def numerator_w_for(h):
                return to_dense_result((lazy_t @ h).evaluate())
        else:
            data = unwrap_lazy(data)

            def numerator_h_for(w):
                return to_dense_result(data.T @ w)

            def numerator_w_for(h):
                return to_dense_result(data @ h)

        for _ in range(self.max_iter):
            # H update: numerator T^T W is a factorized transposed LMM.
            numerator_h = numerator_h_for(w)                             # d x r
            denominator_h = h @ la_ops.crossprod(w) + self.epsilon       # d x r
            h = h * numerator_h / denominator_h
            # W update: numerator T H is a factorized LMM.
            numerator_w = numerator_w_for(h)                             # n x r
            denominator_w = w @ la_ops.crossprod(h) + self.epsilon       # n x r
            w = w * numerator_w / denominator_w
            if self.track_history:
                self.history_.append(self._objective(data, w, h))

        self.w_ = w
        self.h_ = h
        return self

    def _minibatch_step(self, data, w_rows: np.ndarray):
        """One multiplicative update restricted to a batch.

        Updates the global topic matrix ``H`` from the batch's statistics,
        then the batch's own ``W`` rows against the new ``H``; returns the
        updated rows.  With one batch covering every row this is exactly one
        full multiplicative iteration.
        """
        numerator_h = to_dense_result(data.T @ w_rows)
        denominator_h = self.h_ @ la_ops.crossprod(w_rows) + self.epsilon
        self.h_ = self.h_ * numerator_h / denominator_h
        numerator_w = to_dense_result(data @ self.h_)
        denominator_w = w_rows @ la_ops.crossprod(self.h_) + self.epsilon
        return w_rows * numerator_w / denominator_w

    def _fit_sgd(self, data, w: np.ndarray, h: np.ndarray) -> "GNMF":
        """Mini-batch GNMF: epochs of per-batch multiplicative updates.

        ``W`` rows are updated in place batch by batch (each row belongs to
        exactly one batch per epoch), ``H`` accumulates every batch's
        contribution; factors initialize exactly like the batch solver, so
        one full-size batch reproduces it bit for bit.
        """
        self.w_, self.h_ = w, h
        batches = self._stream_batches(data)
        for _ in range(self.max_iter):
            for batch in batches:
                rows = batch.indices
                self.w_[rows] = self._minibatch_step(
                    self._dispatch_batch(batch.data), self.w_[rows])
            if self.track_history:
                self.history_.append(
                    self._objective_streamed(data, batches.batch_size))
        return self

    def _objective_streamed(self, data, batch_size: int) -> float:
        """Squared Frobenius reconstruction error, one batch at a time.

        Uses its own unshuffled iterator: tracking must be purely
        observational, and re-iterating the training iterator would consume an
        extra shuffle permutation per epoch and change the learned factors.
        """
        from repro.core.stream import NormalizedBatchIterator

        total = 0.0
        for batch in NormalizedBatchIterator(data, batch_size=batch_size):
            dense = (batch.data.to_dense() if hasattr(batch.data, "to_dense")
                     else np.asarray(batch.data))
            total += float(np.linalg.norm(dense - self.w_[batch.indices] @ self.h_.T) ** 2)
        return total

    def partial_fit(self, data, row_indices=None) -> "GNMF":
        """One incremental multiplicative update on a single mini-batch.

        With *row_indices* the batch updates those rows of ``w_`` (the sgd
        fit path; indices come from the batch iterator).  Without indices the
        batch is treated as **new** rows of a growing stream: fresh ``W``
        rows are drawn from the persistent seeded RNG, updated against the
        batch, and appended -- which is how the chunk-wise CSV ingestion
        trains GNMF on an entity table that is never fully resident.  ``H``
        initializes from the seeded RNG on the first call (the feature count
        comes from the batch).
        """
        data = self._dispatch_batch(unwrap_lazy(data))
        n_b, d = data.shape
        if self.h_ is None:
            self._stream_rng = self._rng()
            self.h_ = self._stream_rng.uniform(0.1, 1.0, size=(d, self.rank))
            if self.w_ is None:
                self.w_ = np.zeros((0, self.rank))
        if self.h_.shape[0] != d:
            raise ValueError(
                f"batch has {d} features but the learned H has {self.h_.shape[0]} rows"
            )
        if row_indices is None:
            if self._stream_rng is None:
                self._stream_rng = self._rng()
            w_rows = self._stream_rng.uniform(0.1, 1.0, size=(n_b, self.rank))
            self.w_ = np.vstack([self.w_, self._minibatch_step(data, w_rows)])
            return self
        rows = np.asarray(row_indices, dtype=np.int64).ravel()
        if rows.shape[0] != n_b:
            raise ValueError("row_indices must have one entry per batch row")
        self.w_[rows] = self._minibatch_step(data, self.w_[rows])
        return self

    @staticmethod
    def _objective(data, w: np.ndarray, h: np.ndarray) -> float:
        """Squared Frobenius reconstruction error (densifies; diagnostics only)."""
        dense = data.to_dense() if hasattr(data, "to_dense") else np.asarray(data)
        return float(np.linalg.norm(dense - w @ h.T) ** 2)

    def _projection_matrix(self) -> np.ndarray:
        """The ``(d, r)`` map taking data rows to least-squares topic loadings.

        For a row ``t`` the loadings minimizing ``||t - c H^T||`` are
        ``c = t H pinv(H^T H)``, so projection is one linear map over the
        data matrix -- which is what lets the serving subsystem factorize it.
        Cached per ``h_`` object (every update rebinds ``h_``), so repeated
        ``transform`` calls skip the pseudo-inverse.
        """
        if self._projection_cache is not None and self._projection_cache[0] is self.h_:
            return self._projection_cache[1]
        projection = self.h_ @ np.linalg.pinv(la_ops.crossprod(self.h_))
        self._projection_cache = (self.h_, projection)
        return projection

    def transform(self, data) -> np.ndarray:
        """Project rows of *data* onto the learned topic space (``(n, r)`` loadings)."""
        if self.h_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.h_.shape[0], "GNMF.transform")
        return to_dense_result(data @ self._projection_matrix())

    def export_weights(self) -> ServingExport:
        """Export the topic-projection map for the serving subsystem."""
        if self.h_ is None:
            raise RuntimeError("GNMF.export_weights: model is not fitted")
        return ServingExport("gnmf", self._projection_matrix(),
                             metadata={"rank": self.rank})

    def reconstruct(self) -> np.ndarray:
        """Return the low-rank reconstruction ``W H^T``."""
        if self.w_ is None or self.h_ is None:
            raise RuntimeError("model is not fitted")
        return self.w_ @ self.h_.T
