"""Least-squares linear regression (paper Algorithms 5/6, 11/12 and 13/14).

Three solvers are provided, matching the paper:

* :class:`LinearRegressionNE` -- the normal-equation solver
  ``w = ginv(crossprod(T)) (T^T Y)`` of Algorithm 5.  Its runtime is dominated
  by ``crossprod``, which is why its speed-up curves track Figure 3(c).
* :class:`LinearRegressionGD` -- batch gradient descent
  ``w -= alpha * T^T (T w - Y)`` of Algorithm 11 (Appendix G), used when ``d``
  is large or the Gram matrix is singular.
* :class:`LinearRegressionCofactor` -- the hybrid of Schleich et al.
  (Algorithm 13/14): build the co-factor matrix
  ``C = [Y^T T ; crossprod(T)]`` once, then iterate cheap ``(d+1) x d``
  updates (optionally with AdaGrad step-size scaling).

All three are written against the generic LA surface, so they are
automatically factorized when handed a normalized matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.la import generic, kernels
from repro.la.generic import to_dense_result
from repro.ml.base import (
    IterativeEstimator,
    as_column,
    fit_telemetry,
    check_rows_match,
    shard_for_jobs,
    unwrap_lazy,
    validate_n_jobs,
    validate_predict_data,
)
from repro.ml.export import ServingExport


def _export_linear(coef: Optional[np.ndarray], context: str) -> ServingExport:
    """Shared ``export_weights`` body of the three linear-regression solvers."""
    if coef is None:
        raise RuntimeError(f"{context}: model is not fitted")
    return ServingExport("linear_regression", coef)


class LinearRegressionNE:
    """Ordinary least squares via the normal equations and the pseudo-inverse."""

    def __init__(self, crossprod_method: Optional[str] = None, n_jobs: int = 1):
        self.crossprod_method = crossprod_method
        self.n_jobs = validate_n_jobs(n_jobs)
        self.coef_: Optional[np.ndarray] = None

    @fit_telemetry
    def fit(self, data, target) -> "LinearRegressionNE":
        """Solve ``w = ginv(T^T T) (T^T Y)``."""
        data = shard_for_jobs(unwrap_lazy(data), self.n_jobs)
        y = as_column(target)
        check_rows_match(data, y, "LinearRegressionNE.fit")
        if self.crossprod_method is not None and hasattr(data, "crossprod"):
            gram = np.asarray(data.crossprod(self.crossprod_method))
        else:
            gram = generic.crossprod(data)
        xty = to_dense_result(data.T @ y)
        self.coef_ = np.linalg.pinv(gram) @ xty
        return self

    def predict(self, data) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.coef_.shape[0], "LinearRegressionNE.predict")
        return to_dense_result(data @ self.coef_)

    def export_weights(self) -> ServingExport:
        """Export the learned weights for the serving subsystem."""
        return _export_linear(self.coef_, "LinearRegressionNE.export_weights")


class LinearRegressionGD(IterativeEstimator):
    """Ordinary least squares via batch gradient descent (Algorithm 11/12).

    With ``engine="lazy"`` the gradient is evaluated through the lazy layer in
    its normal-equation form ``crossprod(T) w - T^T Y`` (algebraically equal
    to ``T^T (T w - Y)``; this is the same one-time-LA trick the co-factor
    hybrid below uses).  Both ``crossprod(T)`` and ``T^T Y`` are join
    invariant, so after the first iteration every pass costs two cache hits
    plus ``O(d^2)`` regular arithmetic instead of two LA passes over the data.
    """

    def __init__(self, max_iter: int = 20, step_size: float = 1e-6,
                 seed: Optional[int] = 0, track_history: bool = False,
                 engine: str = "eager", n_jobs: Optional[int] = None,
                 solver: str = "batch", batch_size: Optional[int] = None,
                 shuffle: bool = False, memory_budget: Optional[float] = None):
        super().__init__(max_iter=max_iter, step_size=step_size, seed=seed,
                         track_history=track_history, engine=engine, n_jobs=n_jobs,
                         solver=solver, batch_size=batch_size, shuffle=shuffle,
                         memory_budget=memory_budget)
        self.coef_: Optional[np.ndarray] = None

    def _workload_descriptor(self):
        from repro.core.planner import WorkloadDescriptor

        return WorkloadDescriptor.linear_regression_gd(self.max_iter)

    @fit_telemetry
    def fit(self, data, target, initial_weights: Optional[np.ndarray] = None
            ) -> "LinearRegressionGD":
        y = as_column(target)
        engine, data = self._resolve_engine(data)
        check_rows_match(data, y, "LinearRegressionGD.fit")
        d = data.shape[1]
        w = as_column(initial_weights).copy() if initial_weights is not None else np.zeros((d, 1))
        self.history_ = []
        self.lazy_cache_ = None
        if self._use_minibatch():
            return self._fit_sgd(unwrap_lazy(data), y, w)
        if engine == "lazy":
            # Hand the original operand over: a lazy view keeps its attached
            # FactorizedCache (as_lazy passes views through unchanged).
            return self._fit_lazy(data, y, w)
        data = unwrap_lazy(data)
        for _ in range(self.max_iter):
            residual = to_dense_result(data @ w) - y
            gradient = to_dense_result(data.T @ residual)
            w = w - self.step_size * gradient
            if self.track_history:
                self.history_.append(float(np.sum(residual ** 2)))
        self.coef_ = w
        return self

    def _minibatch_step(self, data, y: np.ndarray, w: np.ndarray):
        """One mini-batch gradient step; returns the new weights and the batch SSE."""
        return kernels.sgd_step(data, y, w, self.step_size)

    def _fit_sgd(self, data, y: np.ndarray, w: np.ndarray) -> "LinearRegressionGD":
        """Mini-batch SGD: ``max_iter`` epochs over factorized row batches.

        Each batch of a normalized matrix is a ``take_rows`` slice (attribute
        tables shared), so an epoch streams the base matrices without ever
        materializing the join; one epoch at ``batch_size >= n_rows`` is the
        full-batch update bit for bit.
        """
        batches = self._stream_batches(data, y)
        for _ in range(self.max_iter):
            epoch_sse = 0.0
            for batch in batches:
                w, sse = self._minibatch_step(self._dispatch_batch(batch.data),
                                              batch.target, w)
                epoch_sse += sse
            if self.track_history:
                self.history_.append(epoch_sse)
        self.coef_ = w
        return self

    def partial_fit(self, data, target) -> "LinearRegressionGD":
        """One incremental gradient step on a single mini-batch.

        Initializes ``coef_`` to zeros on the first call (the feature count
        comes from the batch) and applies one update of the Algorithm 11 rule
        restricted to the batch.  *data* may be a factorized batch (a
        ``take_rows`` slice, as yielded by
        :class:`~repro.core.stream.NormalizedBatchIterator` or the chunk-wise
        CSV reader) or a plain row slice -- the two match to numerical
        precision, which the equivalence suite checks.
        """
        data = self._dispatch_batch(unwrap_lazy(data))
        y = as_column(target)
        check_rows_match(data, y, "LinearRegressionGD.partial_fit")
        if self.coef_ is None:
            self.coef_ = np.zeros((data.shape[1], 1))
        self.coef_, sse = self._minibatch_step(data, y, self.coef_)
        if self.track_history:
            self.history_.append(sse)
        return self

    def _fit_lazy(self, data, y: np.ndarray, w: np.ndarray) -> "LinearRegressionGD":
        from repro.core.lazy import constant

        lazy_t = self._lazy_data(data)
        gram = lazy_t.crossprod()          # join-invariant: memoized after iter 1
        projected = lazy_t.T @ constant(y)  # join-invariant: memoized after iter 1
        for _ in range(self.max_iter):
            if self.track_history:
                residual = to_dense_result((lazy_t @ w).evaluate()) - y
                self.history_.append(float(np.sum(residual ** 2)))
            gradient = (gram @ w - projected).evaluate()
            w = w - self.step_size * gradient
        self.coef_ = w
        return self

    def predict(self, data) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.coef_.shape[0], "LinearRegressionGD.predict")
        return to_dense_result(data @ self.coef_)

    def export_weights(self) -> ServingExport:
        """Export the learned weights for the serving subsystem."""
        return _export_linear(self.coef_, "LinearRegressionGD.export_weights")


class LinearRegressionCofactor(IterativeEstimator):
    """The co-factor hybrid of Schleich et al. [35] (Algorithms 13 and 14).

    The expensive LA over the data matrix happens exactly once, when building
    the co-factor ``C = [Y^T T ; crossprod(T)]``; the iterative phase only
    touches ``C``, which is ``(d+1) x d``.  With a normalized matrix, building
    ``C`` uses the factorized transposed-LMM and cross-product rewrites, which
    is how Morpheus subsumes that prior system.
    """

    def __init__(self, max_iter: int = 20, step_size: float = 1e-6,
                 seed: Optional[int] = 0, track_history: bool = False,
                 adagrad: bool = True, epsilon: float = 1e-8, n_jobs: int = 1):
        super().__init__(max_iter=max_iter, step_size=step_size, seed=seed,
                         track_history=track_history, n_jobs=n_jobs)
        self.adagrad = bool(adagrad)
        self.epsilon = float(epsilon)
        self.coef_: Optional[np.ndarray] = None
        self.cofactor_: Optional[np.ndarray] = None

    @fit_telemetry
    def fit(self, data, target, initial_weights: Optional[np.ndarray] = None
            ) -> "LinearRegressionCofactor":
        data = self._dispatch_data(unwrap_lazy(data))
        y = as_column(target)
        check_rows_match(data, y, "LinearRegressionCofactor.fit")
        d = data.shape[1]
        yt_t = to_dense_result(y.T @ data)          # 1 x d, factorized RMM
        gram = generic.crossprod(data)              # d x d, factorized cross-product
        cofactor = np.vstack([yt_t, gram])          # (d + 1) x d
        self.cofactor_ = cofactor

        w = as_column(initial_weights).copy() if initial_weights is not None else np.zeros((d, 1))
        accumulated = np.zeros((d, 1))
        self.history_ = []
        for _ in range(self.max_iter):
            stacked = np.vstack([-np.ones((1, 1)), w])      # [-1; w]
            gradient = cofactor.T @ stacked                  # = crossprod(T) w - T^T Y
            if self.adagrad:
                accumulated += gradient ** 2
                scaled = gradient / (np.sqrt(accumulated) + self.epsilon)
                w = w - self.step_size * scaled
            else:
                w = w - self.step_size * gradient
            if self.track_history:
                self.history_.append(float(np.linalg.norm(gradient)))
        self.coef_ = w
        return self

    def predict(self, data) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        data = validate_predict_data(data, self.coef_.shape[0],
                                     "LinearRegressionCofactor.predict")
        return to_dense_result(data @ self.coef_)

    def export_weights(self) -> ServingExport:
        """Export the learned weights for the serving subsystem."""
        return _export_linear(self.coef_, "LinearRegressionCofactor.export_weights")
