"""Evaluation metrics for the four ML algorithms.

The paper verifies (footnote 7) that factorization does not change ML
accuracy; these metrics are what the test suite and examples use to make that
check concrete -- the factorized and materialized models must produce the same
metric values, and the examples report them to show the models actually learn.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

#: Raw-score magnitude beyond which ``exp`` saturates to 0/1 in float64 anyway;
#: the single clipping constant shared by the logistic fit loops, the streaming
#: ``partial_fit`` paths and ``predict_proba``.
SCORE_CLIP = 500.0


def clip_scores(scores, limit: float = SCORE_CLIP) -> np.ndarray:
    """Clamp raw model scores to ``[-limit, +limit]`` before exponentiation.

    Both the gradient loops and the probability/loss metrics exponentiate raw
    scores; clipping in one shared helper keeps them numerically consistent --
    an extreme score produces the same saturated probability everywhere
    instead of an overflow warning in one code path and a silent ``inf`` in
    another.
    """
    return np.clip(np.asarray(scores, dtype=np.float64), -limit, limit)


def sigmoid(z) -> np.ndarray:
    """Numerically stable logistic function on clipped scores.

    The split between positive and negative arguments keeps every ``exp``
    argument non-positive, and :func:`clip_scores` bounds the input first, so
    no input -- however extreme -- emits overflow warnings or returns NaN.
    """
    z = clip_scores(z)
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _flatten_pair(y_true, y_pred) -> tuple:
    a = np.asarray(y_true, dtype=np.float64).ravel()
    b = np.asarray(y_pred, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ShapeError(f"metric inputs have different lengths: {a.shape} vs {b.shape}")
    return a, b


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    a, b = _flatten_pair(y_true, y_pred)
    if a.size == 0:
        raise ShapeError("accuracy of empty inputs is undefined")
    return float(np.mean(a == b))


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Binary cross-entropy for labels in ``{-1, +1}`` or ``{0, 1}``."""
    y, p = _flatten_pair(y_true, probabilities)
    if y.size == 0:
        raise ShapeError("log loss of empty inputs is undefined")
    y01 = np.where(y > 0, 1.0, 0.0)
    p = np.clip(p, eps, 1.0 - eps)
    return float(-np.mean(y01 * np.log(p) + (1.0 - y01) * np.log(1.0 - p)))


def mean_squared_error(y_true, y_pred) -> float:
    """Average squared residual."""
    a, b = _flatten_pair(y_true, y_pred)
    if a.size == 0:
        raise ShapeError("MSE of empty inputs is undefined")
    return float(np.mean((a - b) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of the mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 is perfect, 0 is the mean predictor)."""
    a, b = _flatten_pair(y_true, y_pred)
    if a.size == 0:
        raise ShapeError("R^2 of empty inputs is undefined")
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - np.mean(a)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def within_cluster_ss(data, labels, centroids) -> float:
    """Within-cluster sum of squares for a K-Means solution.

    *data* may be a normalized matrix (it is densified), *labels* is an
    ``(n,)`` integer assignment and *centroids* the ``(d, k)`` centroid matrix.
    """
    dense = data.to_dense() if hasattr(data, "to_dense") else np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    centroids = np.asarray(centroids, dtype=np.float64)
    if dense.shape[0] != labels.shape[0]:
        raise ShapeError("labels do not align with the data matrix rows")
    diffs = dense - centroids[:, labels].T
    return float(np.sum(diffs ** 2))


def reconstruction_error(data, w, h) -> float:
    """Frobenius-norm error of a GNMF factorization ``|| T - W H^T ||_F``."""
    dense = data.to_dense() if hasattr(data, "to_dense") else np.asarray(data, dtype=np.float64)
    return float(np.linalg.norm(dense - np.asarray(w) @ np.asarray(h).T))
