"""Shared infrastructure for the LA-based ML algorithms.

All estimators follow a small scikit-learn-flavoured convention: ``fit(T, ...)``
trains in place and returns ``self``; learned state lives in attributes with a
trailing underscore; ``max_iter`` bounds the number of LA passes so that the
benchmark harness can compare factorized and materialized runs iteration for
iteration.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.exceptions import ShapeError


class IterativeEstimator(abc.ABC):
    """Base class for gradient-style iterative estimators.

    Parameters
    ----------
    max_iter:
        Number of iterations (LA passes over the data matrix).
    step_size:
        Learning rate ``alpha`` where applicable.
    seed:
        Seed for any random initialization, so factorized and materialized
        runs start from identical states and can be compared exactly.
    track_history:
        When true, per-iteration diagnostics (loss, objective) are appended to
        ``history_``; tracking costs extra LA passes, so benchmarks turn it off.
    engine:
        ``"eager"`` (default) executes each LA operator immediately, exactly
        as the paper's pseudo-code does.  ``"lazy"`` drives the inner loop
        through :mod:`repro.core.lazy`: the per-iteration expressions are
        built as :class:`~repro.core.lazy.expr.LazyExpr` graphs and evaluated
        with cross-iteration memoization, so join-invariant terms
        (``crossprod(T)``, ``T^T Y``, ``2 * T``, ...) are computed once and
        served from the data matrix's
        :class:`~repro.core.lazy.cache.FactorizedCache` on every later
        iteration.  After a lazy ``fit`` the cache is exposed as
        ``lazy_cache_`` for inspection.
    """

    ENGINES = ("eager", "lazy")

    def __init__(self, max_iter: int = 20, step_size: float = 1e-3,
                 seed: Optional[int] = 0, track_history: bool = False,
                 engine: str = "eager"):
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if engine not in self.ENGINES:
            raise ValueError(f"engine must be one of {self.ENGINES}, got {engine!r}")
        self.max_iter = int(max_iter)
        self.step_size = float(step_size)
        self.seed = seed
        self.track_history = bool(track_history)
        self.engine = engine
        self.history_: List[float] = []
        #: FactorizedCache used by the last lazy fit (None for eager fits).
        self.lazy_cache_ = None

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _lazy_data(self, data):
        """Lazy view of *data* for the ``engine="lazy"`` paths.

        Also records the attached cache in ``lazy_cache_`` so callers can
        inspect hit/miss counters after training.
        """
        from repro.core.lazy import as_lazy, find_cache

        lazy = as_lazy(data)
        self.lazy_cache_ = find_cache(lazy)
        return lazy

    @abc.abstractmethod
    def fit(self, data, *args, **kwargs):
        """Train the estimator; must be implemented by subclasses."""


def unwrap_lazy(data):
    """Accept a lazy view anywhere a *concrete* data matrix is needed.

    A :class:`~repro.core.lazy.expr.LeafExpr` (what ``TN.lazy()`` returns)
    unwraps to its wrapped operand and a composite graph is evaluated to a
    concrete matrix.  Eager fit branches and the ``predict`` methods use
    this; the ``engine="lazy"`` branches instead hand the original view to
    :func:`~repro.core.lazy.expr.as_lazy`, which preserves the view's
    attached :class:`~repro.core.lazy.cache.FactorizedCache` (important for
    plain-matrix views, whose cache lives only on the leaf).
    """
    from repro.core.lazy.expr import LazyExpr, LeafExpr

    if isinstance(data, LeafExpr):
        return data.value
    if isinstance(data, LazyExpr):
        return data.evaluate()
    return data


def as_column(y) -> np.ndarray:
    """Coerce a target vector to a dense ``(n, 1)`` float column."""
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    if arr.ndim == 2 and arr.shape[1] == 1:
        return arr
    raise ShapeError(f"expected a target vector, got shape {arr.shape}")


def check_rows_match(data, y: np.ndarray, context: str) -> None:
    """Raise :class:`ShapeError` unless the data matrix and target align."""
    if data.shape[0] != y.shape[0]:
        raise ShapeError(
            f"{context}: data matrix has {data.shape[0]} rows but target has {y.shape[0]}"
        )


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
