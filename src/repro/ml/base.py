"""Shared infrastructure for the LA-based ML algorithms.

All estimators follow a small scikit-learn-flavoured convention: ``fit(T, ...)``
trains in place and returns ``self``; learned state lives in attributes with a
trailing underscore; ``max_iter`` bounds the number of LA passes so that the
benchmark harness can compare factorized and materialized runs iteration for
iteration.
"""

from __future__ import annotations

import abc
import functools
import time
from typing import List, Optional

import numpy as np

from repro import obs
from repro.exceptions import ShapeError

_FITS_TOTAL = obs.REGISTRY.counter(
    "repro_ml_fits_total",
    "Completed fits, by estimator, engine setting and solver",
    labels=("estimator", "engine", "solver"),
)
_FIT_SECONDS = obs.REGISTRY.histogram(
    "repro_ml_fit_seconds",
    "Wall-clock duration of completed fits",
    labels=("estimator",),
    buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
             30.0, 60.0),
)


def fit_telemetry(fn):
    """Instrument a concrete ``fit``: span, duration metrics, plan feedback.

    Applied to every estimator's ``fit``.  Whatever the observability state,
    an ``engine="auto"`` fit gets its measured runtime recorded against the
    chosen plan's prediction (``plan_.outcome`` /
    :func:`repro.core.planner.feedback.record_outcome` -- two clock reads,
    negligible next to a fit).  With observability enabled the fit also runs
    inside a ``<Estimator>.fit`` span and lands in the fit metrics.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        started = time.perf_counter()
        if not obs.enabled():
            result = fn(self, *args, **kwargs)
            plan = getattr(self, "plan_", None)
            if plan is not None:
                plan.record_outcome(time.perf_counter() - started)
            return result
        estimator = type(self).__name__
        engine = getattr(self, "engine", "eager")
        solver = getattr(self, "solver", "batch")
        with obs.span(f"{estimator}.fit", engine=engine, solver=solver) as sp:
            result = fn(self, *args, **kwargs)
            elapsed = time.perf_counter() - started
            plan = getattr(self, "plan_", None)
            if plan is not None:
                outcome = plan.record_outcome(elapsed)
                sp.set(plan=plan.chosen.label,
                       predicted_seconds=outcome.predicted_seconds,
                       measured_seconds=outcome.measured_seconds)
            _FITS_TOTAL.labels(estimator=estimator, engine=str(engine),
                               solver=str(solver)).inc()
            _FIT_SECONDS.labels(estimator=estimator).observe(elapsed)
        return result

    return wrapper


class IterativeEstimator(abc.ABC):
    """Base class for gradient-style iterative estimators.

    Parameters
    ----------
    max_iter:
        Number of iterations (LA passes over the data matrix).
    step_size:
        Learning rate ``alpha`` where applicable.
    seed:
        Seed for any random initialization, so factorized and materialized
        runs start from identical states and can be compared exactly.
    track_history:
        When true, per-iteration diagnostics (loss, objective) are appended to
        ``history_``; tracking costs extra LA passes, so benchmarks turn it off.
    engine:
        ``"eager"`` (default) executes each LA operator immediately, exactly
        as the paper's pseudo-code does.  ``"lazy"`` drives the inner loop
        through :mod:`repro.core.lazy`: the per-iteration expressions are
        built as :class:`~repro.core.lazy.expr.LazyExpr` graphs and evaluated
        with cross-iteration memoization, so join-invariant terms
        (``crossprod(T)``, ``T^T Y``, ``2 * T``, ...) are computed once and
        served from the data matrix's
        :class:`~repro.core.lazy.cache.FactorizedCache` on every later
        iteration.  After a lazy ``fit`` the cache is exposed as
        ``lazy_cache_`` for inspection.  ``"auto"`` asks the cost-based
        planner (:mod:`repro.core.planner`) to choose: it scores materialized
        vs. factorized layout, eager vs. lazy engine and shard counts against
        this estimator's Table-1 operator footprint and dispatches the fit
        accordingly; the chosen :class:`~repro.core.planner.plan.Plan` is
        exposed as ``plan_`` after the fit.  Any explicit ``n_jobs`` -- even
        ``1`` -- pins the shard axis and leaves the planner the remaining
        choices; the default ``None`` leaves it free.
    n_jobs:
        Number of row shards the data matrix is split into for parallel
        execution of the per-iteration LA passes (``-1`` uses the CPU
        count).  The default ``None`` behaves like serial execution except
        under ``engine="auto"``, where it leaves the shard axis free for the
        planner; any explicit value -- including ``1`` -- pins it (so
        ``n_jobs=1`` guarantees serial execution everywhere).  With an
        effective shard count above one the fit wraps the data in the sharded
        backend of :mod:`repro.core.shard` -- normalized matrices via their
        ``.shard()`` method (keeping every shard factorized), plain
        dense/sparse matrices via :class:`~repro.core.shard.ShardedMatrix` --
        and the same estimator code runs unchanged over the shards.  Composes
        with ``engine="lazy"``: the graphs are built over the sharded operand
        and memoized results are computed shard-parallel once.
    solver:
        ``"batch"`` (default) runs the historical full-batch loop -- one LA
        pass over the whole data matrix per iteration.  ``"sgd"`` runs the
        mini-batch loop instead: ``max_iter`` epochs, each streaming the data
        through a :class:`~repro.core.stream.NormalizedBatchIterator` and
        applying one ``partial_fit``-style update per batch.  On a normalized
        matrix every batch is a factorized ``take_rows`` slice (attribute
        tables shared across all batches), so mini-batch training never
        materializes the join.  One epoch with ``batch_size >= n_rows`` (and
        ``shuffle=False``) is bit-for-bit identical to one full-batch
        iteration.  Composes with ``n_jobs`` (each batch is sharded for the
        parallel backend); ``engine="lazy"`` has nothing to memoize across
        distinct batches, so the sgd loop always executes its batches eagerly.
    batch_size:
        Rows per mini-batch for ``solver="sgd"`` / streamed plans.  ``None``
        derives it from ``memory_budget`` when set, else uses one full-size
        batch.
    shuffle:
        Reshuffle the rows each epoch (seeded by ``seed``) in the sgd loop.
    memory_budget:
        Optional per-pass working-set budget in bytes.  ``solver="sgd"``
        derives the batch size from it (via the planner's memory model), and
        ``engine="auto"`` hands it to the :class:`~repro.core.planner.Planner`
        as the memory dimension -- when the materialized (or even the
        full-pass factorized) footprint exceeds the budget, the planner
        returns a streamed plan and the fit runs mini-batched automatically.
    """

    ENGINES = ("eager", "lazy", "auto")
    SOLVERS = ("batch", "sgd")

    def __init__(self, max_iter: int = 20, step_size: float = 1e-3,
                 seed: Optional[int] = 0, track_history: bool = False,
                 engine: str = "eager", n_jobs: Optional[int] = None,
                 solver: str = "batch", batch_size: Optional[int] = None,
                 shuffle: bool = False, memory_budget: Optional[float] = None):
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if engine not in self.ENGINES:
            raise ValueError(f"engine must be one of {self.ENGINES}, got {engine!r}")
        if solver not in self.SOLVERS:
            raise ValueError(f"solver must be one of {self.SOLVERS}, got {solver!r}")
        if batch_size is not None and int(batch_size) < 1:
            raise ValueError("batch_size must be at least 1")
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError("memory_budget must be positive (bytes)")
        self.max_iter = int(max_iter)
        self.step_size = float(step_size)
        self.seed = seed
        self.track_history = bool(track_history)
        self.engine = engine
        self.solver = solver
        self.batch_size = None if batch_size is None else int(batch_size)
        self.shuffle = bool(shuffle)
        self.memory_budget = None if memory_budget is None else float(memory_budget)
        #: explicit n_jobs pins the shard axis for engine="auto" (even 1).
        self._n_jobs_pinned = n_jobs is not None
        self.n_jobs = validate_n_jobs(1 if n_jobs is None else n_jobs)
        #: Planner used by ``engine="auto"`` fits; ``None`` builds a default
        #: (calibrated) one on first use.  Tests inject deterministic planners.
        self.planner = None
        self.history_: List[float] = []
        #: FactorizedCache used by the last lazy fit (None for eager fits).
        self.lazy_cache_ = None
        #: Plan chosen by the last ``engine="auto"`` fit (None otherwise).
        self.plan_ = None

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _dispatch_data(self, data):
        """Shard the concrete operand behind *data* according to ``n_jobs``."""
        return shard_for_jobs(data, self.n_jobs)

    def _workload_descriptor(self):
        """This estimator's Table-1 operator footprint (for ``engine="auto"``).

        Subclasses override with the matching
        :class:`~repro.core.planner.workload.WorkloadDescriptor` factory.
        """
        from repro.core.planner import WorkloadDescriptor

        return WorkloadDescriptor.generic()

    def _resolve_engine(self, data):
        """Resolve ``engine=`` to a concrete ``(engine, operand)`` pair.

        For ``"eager"``/``"lazy"`` this is exactly the historical
        ``_dispatch_data`` path.  For ``"auto"`` the planner scores candidate
        plans for this estimator's workload descriptor and the fit follows the
        winner: a materialized plan swaps the normalized operand for its
        (memoized) materialization, a sharded plan wraps the operand in the
        parallel backend, and the returned engine drives the eager-vs-lazy
        branch of the subclass's ``fit``.  The plan lands in ``plan_``.
        """
        if self.engine != "auto":
            self.plan_ = None
            if self.solver == "sgd":
                # The sgd loop batches the concrete operand itself and shards
                # per batch; wrapping the whole matrix in the sharded backend
                # here would hide its row-selection surface.
                return self.engine, unwrap_lazy(data)
            return self.engine, self._dispatch_data(data)
        from repro.core.lazy.expr import LazyExpr, LeafExpr
        from repro.core.planner import Planner
        from repro.la.types import is_matrix_like

        concrete = unwrap_lazy(data)
        if isinstance(data, LazyExpr) and not isinstance(data, LeafExpr):
            # unwrap_lazy already evaluated the composite graph (a data-sized
            # computation); fit on the result rather than evaluating it again.
            data = concrete
        pinned = effective_n_jobs(self.n_jobs) if self._n_jobs_pinned else None
        if self.solver == "sgd":
            # Mini-batch fits shard per batch, not whole-matrix; restrict the
            # planner to the layout/engine axes.
            pinned = 1
        if not (hasattr(concrete, "shard") or is_matrix_like(concrete)):
            # Chunked / already-sharded operands pass through shard_for_jobs
            # unchanged, so a sharded plan could not be realized -- pin the
            # shard axis and let the planner choose only the engine.
            pinned = 1
        # Steady-state planning: _memoized_materialize makes the join cost a
        # one-time setup per matrix, so repeated fits should not re-charge it.
        planner = self.planner or Planner(charge_materialization=False,
                                          memory_budget=self.memory_budget)
        plan = planner.plan(concrete, self._workload_descriptor(), n_shards=pinned)
        self.plan_ = plan
        operand = data
        # Only normalized input has a layout choice; fixed-layout operands
        # (plain, chunked, already-sharded) must never be densified here even
        # if they happen to expose a materialize() method.
        if not plan.factorized \
                and plan.data_summary.get("kind") in ("normalized", "mn-normalized"):
            operand = _memoized_materialize(concrete)
        if plan.backend == "streamed":
            # A streamed plan dispatches the fit through the mini-batch loop
            # (see _use_minibatch); the operand stays unwrapped so the batch
            # iterator can slice it.
            return plan.engine, unwrap_lazy(operand)
        if plan.n_jobs > 1:
            operand = shard_for_jobs(operand, plan.n_jobs)
        return plan.engine, operand

    def _use_minibatch(self) -> bool:
        """Whether this fit runs the mini-batch loop.

        True when the user asked for it (``solver="sgd"``) or when an
        ``engine="auto"`` plan chose the streamed backend under a memory
        budget.
        """
        if self.solver == "sgd":
            return True
        return self.plan_ is not None and self.plan_.chosen.backend == "streamed"

    def _stream_batches(self, data, target=None):
        """The mini-batch iterator of one sgd/streamed fit over *data*.

        Batch-size precedence: an explicit ``batch_size`` wins; otherwise a
        streamed plan's budget-derived ``batch_rows``; otherwise the
        ``memory_budget`` directly; otherwise one full-size batch.  Iterating
        the returned object again starts a new epoch (with a fresh seeded
        permutation when ``shuffle`` is on).
        """
        from repro.core.stream import NormalizedBatchIterator

        batch_size = self.batch_size
        if batch_size is None and self.plan_ is not None \
                and self.plan_.chosen.backend == "streamed":
            batch_size = self.plan_.chosen.batch_rows
        memory_budget = self.memory_budget if batch_size is None else None
        return NormalizedBatchIterator(data, target=target, batch_size=batch_size,
                                       shuffle=self.shuffle, seed=self.seed,
                                       memory_budget=memory_budget)

    def _dispatch_batch(self, batch_data):
        """Shard one mini-batch for the parallel backend when ``n_jobs > 1``."""
        return shard_for_jobs(batch_data, self.n_jobs)

    def _lazy_data(self, data):
        """Lazy view of *data* for the ``engine="lazy"`` paths.

        Also records the attached cache in ``lazy_cache_`` so callers can
        inspect hit/miss counters after training.
        """
        from repro.core.lazy import as_lazy, find_cache

        lazy = as_lazy(data)
        self.lazy_cache_ = find_cache(lazy)
        return lazy

    @abc.abstractmethod
    def fit(self, data, *args, **kwargs):
        """Train the estimator; must be implemented by subclasses."""


def validate_n_jobs(n_jobs) -> int:
    """Validate an ``n_jobs`` argument: a positive shard count or ``-1``."""
    if not isinstance(n_jobs, (int, np.integer)) or isinstance(n_jobs, bool):
        raise ValueError(f"n_jobs must be an int, got {type(n_jobs).__name__}")
    n_jobs = int(n_jobs)
    if n_jobs == 0 or n_jobs < -1:
        raise ValueError("n_jobs must be a positive shard count or -1 (all CPUs)")
    return n_jobs


def effective_n_jobs(n_jobs: int) -> int:
    """Resolve ``-1`` to the machine's CPU count."""
    if n_jobs == -1:
        from repro.la.parallel import default_workers

        return default_workers()
    return n_jobs


def shard_for_jobs(data, n_jobs: int):
    """Wrap *data* in the sharded parallel backend when ``n_jobs != 1``.

    Normalized matrices shard through their own ``.shard()`` method so every
    shard stays factorized; plain dense/sparse matrices become a
    :class:`~repro.core.shard.ShardedMatrix`; already-sharded and chunked
    operands (and lazy views over them) pass through unchanged.

    Two details keep the lazy engine's warm-cache contract intact under
    sharding.  The shard view is memoized per ``(object, shard count)`` on
    the source matrix (base matrices are immutable by the library-wide
    convention), so repeated fits reuse one wrapper -- and therefore one
    :class:`~repro.core.lazy.cache.FactorizedCache`.  And when *data* is a
    lazy view carrying an explicit cache, that cache is re-attached to the
    sharded operand instead of being dropped with the unwrapped view.
    """
    from repro.core.lazy.expr import LeafExpr

    jobs = effective_n_jobs(validate_n_jobs(n_jobs))
    if jobs == 1:
        return data
    cache = data.cache if isinstance(data, LeafExpr) else None
    concrete = unwrap_lazy(data)
    if hasattr(concrete, "shard"):
        sharded = _memoized_shard_view(concrete, jobs)
    else:
        from repro.la.types import is_matrix_like

        if not is_matrix_like(concrete):
            return data  # chunked / already-sharded operands pass through
        from repro.core.shard import ShardedMatrix

        sharded = ShardedMatrix.from_matrix(concrete, jobs)
    if cache is not None:
        return sharded.lazy(cache=cache)
    return sharded


def _memoized_materialize(matrix):
    """``matrix.materialize()``, cached on the matrix (bases are immutable).

    A materialized plan would otherwise re-join on every fit; the memo keeps
    repeated ``engine="auto"`` fits on the same data matrix warm, matching
    the per-object memoization of the shard views below.  Like the
    FactorizedCache entries of the lazy engine, this is a deliberate
    space-time tradeoff: the dense join output (``n_S x d``) lives as long as
    the matrix does.  Release it with ``del matrix._materialized_view`` if
    the matrix outlives its auto-engine fits.
    """
    cached = getattr(matrix, "_materialized_view", None)
    if cached is not None:
        return cached
    materialized = matrix.materialize()
    try:
        matrix._materialized_view = materialized
    except AttributeError:  # pragma: no cover - exotic operand types
        pass
    return materialized


def _memoized_shard_view(matrix, jobs: int):
    """``matrix.shard(jobs)``, cached on the matrix so repeated fits share it."""
    views = getattr(matrix, "_shard_views", None)
    if views is None:
        views = {}
        try:
            matrix._shard_views = views
        except AttributeError:  # pragma: no cover - exotic operand types
            return matrix.shard(jobs)
    if jobs not in views:
        views[jobs] = matrix.shard(jobs)
    return views[jobs]


def unwrap_lazy(data):
    """Accept a lazy view anywhere a *concrete* data matrix is needed.

    A :class:`~repro.core.lazy.expr.LeafExpr` (what ``TN.lazy()`` returns)
    unwraps to its wrapped operand and a composite graph is evaluated to a
    concrete matrix.  Eager fit branches and the ``predict`` methods use
    this; the ``engine="lazy"`` branches instead hand the original view to
    :func:`~repro.core.lazy.expr.as_lazy`, which preserves the view's
    attached :class:`~repro.core.lazy.cache.FactorizedCache` (important for
    plain-matrix views, whose cache lives only on the leaf).
    """
    from repro.core.lazy.expr import LazyExpr, LeafExpr

    if isinstance(data, LeafExpr):
        return data.value
    if isinstance(data, LazyExpr):
        return data.evaluate()
    return data


def validate_predict_data(data, n_features: int, context: str):
    """Validate and coerce an inference input to a scorable 2-D operand.

    Accepts everything ``fit`` accepts -- plain dense/sparse matrices,
    normalized matrices, chunked/sharded operands, lazy views -- plus the
    point-request shapes an inference call sees: a 1-D vector of length
    ``n_features`` (one sample) or a nested sequence.  All shape problems
    raise :class:`repro.exceptions.ShapeError` with the estimator context
    instead of leaking backend-specific numpy errors, and every estimator's
    ``predict``/``predict_proba``/``decision_function``/``transform`` routes
    through here so the four algorithms reject bad input identically.
    """
    from repro.la.types import is_matrix_like

    data = unwrap_lazy(data)
    if not is_matrix_like(data) and not hasattr(data, "shape"):
        try:
            data = np.asarray(data, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ShapeError(f"{context}: input is not matrix-like ({exc})") from exc
    if isinstance(data, np.ndarray):
        if data.ndim == 1:
            if data.shape[0] != n_features:
                raise ShapeError(
                    f"{context}: 1-D input has {data.shape[0]} features, "
                    f"expected {n_features}"
                )
            data = data.reshape(1, -1)
        elif data.ndim != 2:
            raise ShapeError(f"{context}: expected a 1-D or 2-D input, got ndim={data.ndim}")
    shape = getattr(data, "shape", None)
    if shape is None or len(shape) != 2:
        raise ShapeError(f"{context}: operand has no 2-D shape")
    if shape[1] != n_features:
        raise ShapeError(
            f"{context}: input has {shape[1]} features but the model was "
            f"trained with {n_features}"
        )
    return data


def as_column(y) -> np.ndarray:
    """Coerce a target vector to a dense ``(n, 1)`` float column."""
    arr = np.asarray(y, dtype=np.float64)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    if arr.ndim == 2 and arr.shape[1] == 1:
        return arr
    raise ShapeError(f"expected a target vector, got shape {arr.shape}")


def check_rows_match(data, y: np.ndarray, context: str) -> None:
    """Raise :class:`ShapeError` unless the data matrix and target align."""
    if data.shape[0] != y.shape[0]:
        raise ShapeError(
            f"{context}: data matrix has {data.shape[0]} rows but target has {y.shape[0]}"
        )


# Canonical clipped implementations live in repro.ml.metrics; re-exported here
# because the estimators (and downstream users) historically import them from
# the base module.
from repro.ml.metrics import clip_scores, sigmoid  # noqa: E402,F401
