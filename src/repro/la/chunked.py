"""Row-partitioned matrices emulating Oracle R Enterprise's execution model.

The paper's scalability study (Section 5.2.4, Tables 9 and 10) runs Morpheus
on Oracle R Enterprise, whose ``ore.rowapply`` operator streams a
larger-than-memory table through an R function one row-chunk at a time.  We do
not have ORE (it is a closed-source commercial system), so this module builds
the closest open equivalent: :class:`ChunkedMatrix`, a matrix stored as a list
of row chunks whose LA operators are computed chunk-at-a-time via
:func:`row_apply`.

What the substitution preserves
-------------------------------
The experiment in the paper measures how the factorized and materialized
versions of logistic regression scale when every pass over the data has to be
streamed.  The relevant behaviour is (a) per-chunk operator dispatch overhead
and (b) the fact that the factorized version streams the *base* matrices while
the materialized version streams the (much wider or taller) join output.  Both
are faithfully exercised by :class:`ChunkedMatrix`; only the absolute
constants (disk vs. memory bandwidth) differ, which the benchmark reports make
explicit.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.la.types import MatrixLike, ensure_2d, is_sparse, to_dense
from repro.la import ops as la_ops


def row_apply(matrix: "ChunkedMatrix", fn: Callable[[MatrixLike], MatrixLike],
              pool=None) -> List[MatrixLike]:
    """Apply *fn* to every row chunk of *matrix* and collect the results in order.

    This is the Python analogue of ORE's ``ore.rowapply``: the function sees
    one in-memory chunk at a time and never the whole matrix.  By default the
    chunks are streamed serially, exactly like ORE; passing *pool* (a spec
    accepted by :func:`repro.la.parallel.resolve_pool` -- ``"thread"``, a
    worker count, an executor, ...) maps the chunks through a worker pool
    instead, which is the chunk-level counterpart of the sharded execution in
    :mod:`repro.core.shard`.
    """
    if pool is None:
        return [fn(chunk) for chunk in matrix.chunks]
    from repro.la.parallel import resolve_pool

    worker_pool = resolve_pool(pool, default_max_workers=matrix.num_chunks)
    try:
        return worker_pool.map(fn, matrix.chunks)
    finally:
        # Only tear down pools this call created from a spec; caller-owned
        # WorkerPool instances (resolve_pool returns them as-is) stay alive.
        if worker_pool is not pool:
            worker_pool.close()


class TransposedChunkedView:
    """A lightweight read-only view of ``ChunkedMatrix.T``.

    ML scripts only ever use the transpose of the data matrix inside products
    of the form ``T.T @ X`` (gradients, centroid updates, co-factor rows), so
    this view supports exactly that -- delegating to
    :meth:`ChunkedMatrix.transpose_matmul`, which streams one chunk at a time --
    plus the shape/densification accessors the tests and diagnostics need.
    """

    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, parent: "ChunkedMatrix"):
        self._parent = parent

    @property
    def shape(self) -> tuple:
        rows, cols = self._parent.shape
        return (cols, rows)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "ChunkedMatrix":
        return self._parent

    def __matmul__(self, other: MatrixLike) -> np.ndarray:
        return self._parent.transpose_matmul(other)

    def to_dense(self) -> np.ndarray:
        return self._parent.to_dense().T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransposedChunkedView(shape={self.shape})"


class ChunkedMatrix:
    """A matrix stored as consecutive row chunks.

    The class supports exactly the operator surface the Morpheus rewrite rules
    and the ML algorithms need: left/right matrix multiplication, the
    aggregations, cross-product, element-wise scalar operations and scalar
    functions.  Results that are small (aggregates, ``d x d`` Gram matrices,
    ``d x k`` products) are returned as ordinary in-memory matrices; results
    that are as large as the input (scalar ops, LMM outputs) are returned as
    new :class:`ChunkedMatrix` instances, mirroring how ORE keeps large
    intermediates in the database.
    """

    # Make NumPy defer binary operators (notably ``ndarray @ ChunkedMatrix``)
    # to this class instead of trying to coerce it into an object array.
    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, chunks: Sequence[MatrixLike]):
        if not chunks:
            raise ShapeError("ChunkedMatrix requires at least one chunk")
        widths = {ensure_2d(c).shape[1] for c in chunks}
        if len(widths) != 1:
            raise ShapeError(f"all chunks must have the same number of columns, got {sorted(widths)}")
        self.chunks: List[MatrixLike] = [ensure_2d(c) for c in chunks]
        self._n_cols = self.chunks[0].shape[1]
        self._n_rows = sum(c.shape[0] for c in self.chunks)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_matrix(cls, matrix: MatrixLike, chunk_rows: int) -> "ChunkedMatrix":
        """Partition an in-memory matrix into row chunks of at most *chunk_rows*."""
        matrix = ensure_2d(matrix)
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        n = matrix.shape[0]
        bounds = list(range(0, n, chunk_rows)) + [n]
        chunks = [matrix[bounds[i]:bounds[i + 1], :] for i in range(len(bounds) - 1)]
        return cls(chunks)

    # -- basic properties ----------------------------------------------------

    @property
    def shape(self) -> tuple:
        return (self._n_rows, self._n_cols)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def T(self) -> "TransposedChunkedView":
        """Lazy transpose view supporting ``T.T @ X`` style products."""
        return TransposedChunkedView(self)

    def to_matrix(self) -> MatrixLike:
        """Concatenate all chunks into a single in-memory matrix."""
        if all(is_sparse(c) for c in self.chunks):
            return sp.vstack(self.chunks, format="csr")
        return np.vstack([to_dense(c) for c in self.chunks])

    def to_dense(self) -> np.ndarray:
        return to_dense(self.to_matrix())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkedMatrix(shape={self.shape}, chunks={self.num_chunks})"

    # -- aggregations --------------------------------------------------------

    def rowsums(self) -> np.ndarray:
        return np.vstack([la_ops.rowsums(c) for c in self.chunks])

    def colsums(self) -> np.ndarray:
        partials = [la_ops.colsums(c) for c in self.chunks]
        return np.sum(np.vstack(partials), axis=0, keepdims=True)

    def total_sum(self) -> float:
        return float(sum(la_ops.total_sum(c) for c in self.chunks))

    # -- products ------------------------------------------------------------

    def matmul(self, other: MatrixLike) -> "ChunkedMatrix":
        """Left multiplication ``self @ other``; the result stays chunked."""
        other = ensure_2d(other)
        if other.shape[0] != self._n_cols:
            raise ShapeError(f"matmul: {self.shape} @ {other.shape}")
        return ChunkedMatrix([la_ops.matmul(c, other) for c in self.chunks])

    def rmatmul(self, other: MatrixLike) -> MatrixLike:
        """Right multiplication ``other @ self`` as an in-memory matrix.

        The result has as many rows as *other*, which in ML scripts is a small
        weight/assignment matrix, so returning it in memory matches ORE usage.
        """
        other = ensure_2d(other)
        if other.shape[1] != self._n_rows:
            raise ShapeError(f"rmatmul: {other.shape} @ {self.shape}")
        pieces = []
        col = 0
        for chunk in self.chunks:
            rows = chunk.shape[0]
            pieces.append(la_ops.matmul(other[:, col:col + rows], chunk))
            col += rows
        return sum(pieces[1:], pieces[0])

    def crossprod(self) -> np.ndarray:
        """Gram matrix ``self.T @ self`` accumulated one chunk at a time."""
        acc = np.zeros((self._n_cols, self._n_cols))
        for chunk in self.chunks:
            acc += to_dense(la_ops.crossprod(chunk))
        return acc

    def transpose_matmul(self, other: MatrixLike) -> np.ndarray:
        """Compute ``self.T @ other`` (with *other* row-aligned to ``self``)."""
        other = ensure_2d(other)
        if other.shape[0] != self._n_rows:
            raise ShapeError(f"transpose_matmul: {self.shape}.T @ {other.shape}")
        acc = np.zeros((self._n_cols, other.shape[1]))
        row = 0
        for chunk in self.chunks:
            rows = chunk.shape[0]
            acc += to_dense(la_ops.matmul(la_ops.transpose(chunk), other[row:row + rows, :]))
            row += rows
        return acc

    # -- element-wise --------------------------------------------------------

    def scalar_op(self, op: str, scalar: float, reverse: bool = False) -> "ChunkedMatrix":
        return ChunkedMatrix([la_ops.scalar_op(c, op, scalar, reverse=reverse) for c in self.chunks])

    def elementwise(self, fn: Callable[[np.ndarray], np.ndarray]) -> "ChunkedMatrix":
        return ChunkedMatrix([la_ops.elementwise(c, fn) for c in self.chunks])

    # -- Python operator protocol (the subset ML scripts use) ----------------

    def __matmul__(self, other: MatrixLike) -> "ChunkedMatrix":
        return self.matmul(other)

    def __rmatmul__(self, other: MatrixLike) -> MatrixLike:
        return self.rmatmul(other)

    def __mul__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("*", scalar)

    __rmul__ = __mul__

    def __add__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("+", scalar)

    __radd__ = __add__

    def __sub__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("-", scalar)

    def __rsub__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("-", scalar, reverse=True)

    def __truediv__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("/", scalar)

    def __pow__(self, scalar: float) -> "ChunkedMatrix":
        return self.scalar_op("**", scalar)

    # -- chunk mapping -------------------------------------------------------

    def row_apply(self, fn: Callable[[MatrixLike], MatrixLike], pool=None) -> List[MatrixLike]:
        """Bound form of :func:`row_apply`; *pool* enables the parallel map path."""
        return row_apply(self, fn, pool=pool)

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterable[MatrixLike]:
        return iter(self.chunks)
