"""Generic LA functions that dispatch on the operand's own methods.

The ML algorithms in :mod:`repro.ml` are written once against these functions
and therefore run unchanged over:

* plain dense/sparse matrices (dispatches to :mod:`repro.la.ops`),
* :class:`~repro.core.normalized_matrix.NormalizedMatrix` and
  :class:`~repro.core.mn_matrix.MNNormalizedMatrix` (dispatches to the
  object's factorized methods), and
* :class:`~repro.la.chunked.ChunkedMatrix` (dispatches to chunk-at-a-time
  methods).

This is the concrete realization of the paper's automation claim: the ML
script is the *same* LA script in both the standard and factorized versions;
only the type of the data matrix changes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.la import ops as la_ops
from repro.la.types import MatrixLike, to_dense


def rowsums(x) -> np.ndarray:
    """Row sums, via the operand's ``rowsums`` method when it has one."""
    if hasattr(x, "rowsums"):
        return x.rowsums()
    return la_ops.rowsums(x)


def colsums(x) -> np.ndarray:
    """Column sums, via the operand's ``colsums`` method when it has one."""
    if hasattr(x, "colsums"):
        return x.colsums()
    return la_ops.colsums(x)


def total_sum(x) -> float:
    """Grand total, via the operand's ``total_sum`` method when it has one."""
    if hasattr(x, "total_sum"):
        return x.total_sum()
    return la_ops.total_sum(x)


def crossprod(x) -> np.ndarray:
    """Gram matrix ``x^T x``, via the operand's ``crossprod`` method when present."""
    if hasattr(x, "crossprod"):
        return np.asarray(x.crossprod())
    return np.asarray(to_dense(la_ops.crossprod(x)))


def ginv(x) -> np.ndarray:
    """Moore-Penrose pseudo-inverse via the operand's ``ginv`` method when present."""
    if hasattr(x, "ginv"):
        return np.asarray(x.ginv())
    return la_ops.ginv(x)


def elementwise(x, fn: Callable[[np.ndarray], np.ndarray]):
    """Element-wise scalar function, via the operand's ``apply``/``elementwise``."""
    if hasattr(x, "apply"):
        return x.apply(fn)
    if hasattr(x, "elementwise"):
        return x.elementwise(fn)
    return la_ops.elementwise(x, fn)


def square(x):
    """Element-wise square of any operand family.

    Plain SciPy sparse matrices interpret ``**`` as matrix power, so they are
    routed through the element-wise primitive instead; normalized and chunked
    matrices overload ``**`` element-wise already.
    """
    if hasattr(x, "apply") or hasattr(x, "elementwise"):
        return x ** 2
    return la_ops.scalar_op(x, "**", 2.0)


def matmul(a, b):
    """Matrix product honouring operator overloads on either operand."""
    return a @ b


def row_min(x) -> np.ndarray:
    """Row-wise minimum of a *regular* matrix (distance matrices are dense)."""
    return la_ops.row_min(to_dense_result(x))


def to_dense_result(x) -> np.ndarray:
    """Densify an operator *result* (never a normalized data matrix)."""
    if hasattr(x, "to_dense"):
        return x.to_dense()
    return to_dense(x)


def num_rows(x) -> int:
    """Number of rows of any operand family."""
    return int(x.shape[0])


def num_cols(x) -> int:
    """Number of columns of any operand family."""
    return int(x.shape[1])
