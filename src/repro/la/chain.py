"""Multi-hop indicator chains: products of PK-FK indicators kept factorized.

A snowflake schema chains PK-FK joins: entity -> K1 -> K2 -> R.  The row of
``R`` an entity row joins to is reached through the *composition* of the hop
indicators, i.e. through the product ``K1 @ K2`` -- which is itself a valid
PK-FK indicator (each factor has exactly one 1 per row, so the product does
too).  :class:`ChainedIndicator` represents that product without forming it:
it stores the hop matrices and rewrites every operation the factorized
algebra performs on an indicator into per-hop sparse operations, always
folding from the small end first (``K1 @ (K2 @ X)``, never ``(K1 @ K2) @ X``)
-- the same multiplication-order argument the paper makes for ``K (R X)``.

Because every rewrite rule touches indicators only through the primitives of
:mod:`repro.la.ops` (the closure property), teaching those primitives about
this one class closes the whole Table-1 operator set -- and therefore every
engine built on it (lazy, sharded, streamed, serving) -- over multi-hop
chains.

``collapse()`` materializes the product as one CSR matrix (nnz equal to the
entity row count, exactly like a single-hop indicator); the planner decides
per chain whether that one-time cost beats the extra per-pass hop scatters
(:mod:`repro.core.planner.chains`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ShapeError


def _fold_left(hops: Sequence[sp.csr_matrix], other, transposed: bool):
    """``chain @ other`` without forming the product: apply hops right-to-left."""
    out = other
    if transposed:
        # (K1 ... Kh)^T X = Kh^T (... (K1^T X))
        for hop in hops:
            out = _product(hop.T, out)
    else:
        # (K1 ... Kh) X = K1 (... (Kh X))
        for hop in reversed(hops):
            out = _product(hop, out)
    return out


def _fold_right(hops: Sequence[sp.csr_matrix], other, transposed: bool):
    """``other @ chain`` without forming the product: apply hops left-to-right."""
    out = other
    if transposed:
        # X (K1 ... Kh)^T = ((X Kh^T) ...) K1^T
        for hop in reversed(hops):
            out = _product(out, hop.T)
    else:
        # X (K1 ... Kh) = ((X K1) ...) Kh
        for hop in hops:
            out = _product(out, hop)
    return out


def _product(a, b):
    """One fold step; sparse x sparse stays sparse, mixed results densify."""
    out = a @ b
    if sp.issparse(out):
        return out
    return np.asarray(out)


class ChainedIndicator:
    """A lazily-evaluated product ``K1 @ K2 @ ... @ Kh`` of indicator hops.

    Parameters
    ----------
    hops:
        Sparse hop matrices with agreeing inner dimensions; each hop is a
        PK-FK indicator (one 1 per row).  Stored as CSR.
    transposed:
        Whether this object represents the product (``False``) or its
        transpose (``True``) -- the same zero-cost flag trick
        :class:`~repro.core.normalized_matrix.NormalizedMatrix` uses.
    """

    # Defer ``ndarray @ chain`` etc. to our overloads.
    __array_ufunc__ = None
    __array_priority__ = 900

    def __init__(self, hops: Sequence, transposed: bool = False,
                 _collapsed: Optional[sp.csr_matrix] = None):
        if not hops:
            raise ShapeError("a chained indicator needs at least one hop")
        csr_hops = []
        for hop in hops:
            if isinstance(hop, ChainedIndicator):
                if hop.transposed:
                    raise ShapeError(
                        "cannot nest a transposed chain as a hop; collapse it first"
                    )
                csr_hops.extend(hop.hops)
                continue
            if not sp.issparse(hop):
                raise ShapeError("chain hops must be sparse indicator matrices")
            csr_hops.append(hop.tocsr())
        for i, (a, b) in enumerate(zip(csr_hops, csr_hops[1:])):
            if a.shape[1] != b.shape[0]:
                raise ShapeError(
                    f"chain hop {i} has {a.shape[1]} columns but hop {i + 1} "
                    f"has {b.shape[0]} rows"
                )
        self.hops: Tuple[sp.csr_matrix, ...] = tuple(csr_hops)
        self.transposed = bool(transposed)
        self._collapsed = _collapsed  # cached untransposed product

    # -- shape and metadata ----------------------------------------------------

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    @property
    def shape(self) -> tuple:
        rows, cols = self.hops[0].shape[0], self.hops[-1].shape[1]
        return (cols, rows) if self.transposed else (rows, cols)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self):
        return self.hops[0].dtype

    @property
    def nnz(self) -> int:
        """Non-zeros of the (virtual) product -- what collapsing would store."""
        return int(self.collapse().nnz)

    @property
    def T(self) -> "ChainedIndicator":
        chain = ChainedIndicator(self.hops, transposed=not self.transposed,
                                 _collapsed=self._collapsed)
        return chain

    def transpose(self) -> "ChainedIndicator":
        return self.T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = " @ ".join(f"{h.shape[0]}x{h.shape[1]}" for h in self.hops)
        return f"ChainedIndicator({dims}, transposed={self.transposed})"

    # -- materialization -------------------------------------------------------

    def collapse(self) -> sp.csr_matrix:
        """The untransposed product as one CSR matrix (cached).

        Sparse products of one-nonzero-per-row factors cost O(rows) time and
        the result has at most one non-zero per row -- the collapsed chain is
        never larger than its first hop.
        """
        if self._collapsed is None:
            out = self.hops[0]
            for hop in self.hops[1:]:
                out = out @ hop
            self._collapsed = out.tocsr()
        return self._collapsed

    def tocsr(self) -> sp.csr_matrix:
        """The represented matrix (transpose applied) as CSR."""
        collapsed = self.collapse()
        return collapsed.T.tocsr() if self.transposed else collapsed

    def toarray(self) -> np.ndarray:
        return self.tocsr().toarray()

    def copy(self) -> "ChainedIndicator":
        return ChainedIndicator([h.copy() for h in self.hops],
                                transposed=self.transposed)

    def astype(self, dtype) -> "ChainedIndicator":
        return ChainedIndicator([h.astype(dtype) for h in self.hops],
                                transposed=self.transposed)

    # -- products --------------------------------------------------------------

    def __matmul__(self, other):
        if isinstance(other, ChainedIndicator):
            other = other.tocsr()
        if not (isinstance(other, np.ndarray) or sp.issparse(other)):
            return NotImplemented
        if isinstance(other, np.ndarray) and other.ndim == 1:
            other = other.reshape(-1, 1)
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {self.shape} @ {other.shape}"
            )
        return _fold_left(self.hops, other, self.transposed)

    def __rmatmul__(self, other):
        if not (isinstance(other, np.ndarray) or sp.issparse(other)):
            return NotImplemented
        if isinstance(other, np.ndarray) and other.ndim == 1:
            other = other.reshape(1, -1)
        if other.shape[1] != self.shape[0]:
            raise ShapeError(
                f"matmul: inner dimensions do not agree {other.shape} @ {self.shape}"
            )
        return _fold_right(self.hops, other, self.transposed)

    # -- aggregations ----------------------------------------------------------

    def sum(self, axis=None):
        """Match ``scipy.sparse`` semantics (``np.matrix`` rows/columns)."""
        return self.tocsr().sum(axis=axis)

    # -- slicing ---------------------------------------------------------------

    def __getitem__(self, key):
        """Row/column selection staying factorized.

        Selecting rows only touches the first hop and selecting columns only
        the last hop (the other hops are shared by reference), which is what
        keeps ``take_rows`` / shard slicing / streaming mini-batches and the
        delta rules' column selection O(selection) instead of O(chain).
        Simultaneous row *and* column selection falls back to the collapsed
        product.
        """
        if not isinstance(key, tuple) or len(key) != 2:
            raise TypeError("chained indicators support 2-D indexing only")
        rows, cols = key
        if self.transposed:
            plain = ChainedIndicator(self.hops, transposed=False,
                                     _collapsed=self._collapsed)
            return plain[cols, rows].T
        full_rows = isinstance(rows, slice) and rows == slice(None)
        full_cols = isinstance(cols, slice) and cols == slice(None)
        if full_rows and full_cols:
            return ChainedIndicator(self.hops, _collapsed=self._collapsed)
        if full_cols:
            head = self.hops[0][rows, :]
            return ChainedIndicator((head,) + self.hops[1:])
        if full_rows:
            tail = self.hops[-1][:, cols]
            return ChainedIndicator(self.hops[:-1] + (tail.tocsr(),))
        return self.collapse()[rows, cols]
