"""Linear-algebra utility layer.

This subpackage is the substrate every other part of the library builds on.
It provides:

* :mod:`repro.la.types` -- shared type aliases and dense/sparse predicates.
* :mod:`repro.la.ops` -- a uniform set of LA primitives (``rowsums``,
  ``colsums``, ``crossprod``, ``ginv`` ...) that behave identically for dense
  NumPy arrays and SciPy sparse matrices.  The Morpheus rewrite rules are
  expressed exclusively in terms of these primitives, which is what gives the
  framework *closure*: a rewritten operator is just another LA expression.
* :mod:`repro.la.backend` -- a small backend abstraction
  (:class:`DenseBackend`, :class:`SparseBackend`, :class:`ChunkedBackend`)
  mirroring the paper's claim that Morpheus can sit on top of any LA system.
* :mod:`repro.la.chunked` -- :class:`ChunkedMatrix`, a row-partitioned matrix
  that emulates Oracle R Enterprise's ``ore.rowapply`` execution model and is
  used for the scalability experiments (Tables 9 and 10).
"""

from repro.la.types import (
    MatrixLike,
    is_sparse,
    is_dense,
    is_vector,
    ensure_2d,
    to_dense,
    to_sparse,
)
from repro.la.ops import (
    rowsums,
    colsums,
    total_sum,
    crossprod,
    ginv,
    diag_scale_rows,
    sparse_diag,
    hstack,
    vstack,
    matmul,
    transpose,
    elementwise,
    scalar_op,
    allclose,
    nnz,
    row_min,
    indicator_from_labels,
)
from repro.la.backend import (
    Backend,
    DenseBackend,
    SparseBackend,
    ChunkedBackend,
    ShardedBackend,
    get_backend,
)
from repro.la.chunked import ChunkedMatrix, row_apply
from repro.la.parallel import (
    ExecutorPool,
    ParallelExecutor,
    ProcessPool,
    SerialPool,
    ThreadPool,
    WorkerPool,
    resolve_pool,
)

__all__ = [
    "MatrixLike",
    "is_sparse",
    "is_dense",
    "is_vector",
    "ensure_2d",
    "to_dense",
    "to_sparse",
    "rowsums",
    "colsums",
    "total_sum",
    "crossprod",
    "ginv",
    "diag_scale_rows",
    "sparse_diag",
    "hstack",
    "vstack",
    "matmul",
    "transpose",
    "elementwise",
    "scalar_op",
    "allclose",
    "nnz",
    "row_min",
    "indicator_from_labels",
    "Backend",
    "DenseBackend",
    "SparseBackend",
    "ChunkedBackend",
    "ShardedBackend",
    "get_backend",
    "ChunkedMatrix",
    "row_apply",
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "ExecutorPool",
    "ParallelExecutor",
    "resolve_pool",
]
