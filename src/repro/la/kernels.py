"""Named fused gather-multiply-reduce kernels behind one registry.

The Table-1 rewrites win by pushing work into small per-table products, but
executing them as chains of generic primitives re-walks the indicator CSR
structure on every call: ``K @ (R @ X)`` is a sparse matmul whose only job is
to *gather* rows of the small product, ``colSums(K)`` is a sparse reduction
whose only job is to *count* codes, and so on.  Every one of those inner loops
is really one of a handful of fused shapes over the indicator **codes**
(:func:`repro.core.indicator.indicator_codes` -- the per-row attribute-table
row index that the CSR structure encodes):

======================  =====================================================
kernel                  fused shape
======================  =====================================================
``gather_add``          ``out += (R @ X)[codes]``            (LMM term)
``scatter_right``       ``(X K) R`` via code-binned column sums  (RMM term)
``scatter_crossprod``   ``R^T diag(bincount(codes)) R``      (diagonal block)
``cross_block``         ``R_i^T (K_i^T K_j) R_j`` via paired-code counts
``entity_cross_block``  ``(S^T K) R`` via code-binned column sums
``gather_gram``         ``out += (R R^T)[codes][:, codes]``  (Gramian term)
``gather_rows``         ``rowSums(R)[codes]``
``scatter_colsums``     ``bincount(codes) @ R``
``scatter_total``       ``bincount(codes) . rowSums(R)``
``gather_dot``          entity dot + per-table partial gather (serving)
``partial_scores``      ``R_k @ W_k`` partial-score block     (serving)
``sgd_step``            fused residual/gradient/update        (streaming)
``logistic_sgd_step``   fused score/clip/sigmoid-step         (streaming)
``take_indicator_rows`` CSR row take rebuilt straight from codes
======================  =====================================================

Three implementation sets live behind the registry:

* ``"reference"`` -- the primitive chains exactly as the rewrite rules have
  always emitted them (``matmul``/``colsums``/... from :mod:`repro.la.ops`).
  This set *is* the traced algebra: when golden-trace recording is active the
  dispatcher always routes here, so the operator traces are byte-identical to
  the pre-kernel layer by construction.
* ``"numpy"`` -- fused pure-NumPy passes over indicator codes (gathers are
  fancy indexing, scatters are ``bincount``); always available, never slower
  than the reference chains, and the automatic fallback when Numba is absent.
* ``"numba"`` -- JIT-compiled single-pass loops from
  :mod:`repro.la._numba_kernels`; only offered when the optional ``[kernels]``
  extra (Numba) is installed.  Kernels without a compiled variant fall back to
  the ``"numpy"`` set per kernel.

The active set is process-global: ``REPRO_KERNELS=reference|numpy|numba``
pins it at import, :func:`set_active` / :func:`using` switch it at runtime,
and the default is :func:`best_available` (like BLAS, the fastest installed
implementation wins unless the caller says otherwise).
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.la.chain import ChainedIndicator
from repro.la.ops import (
    colsums,
    crossprod,
    diag_scale_rows,
    matmul,
    rowsums,
    transpose,
)
from repro.la.types import MatrixLike, to_dense

__all__ = [
    "KERNEL_NAMES",
    "active",
    "available_sets",
    "best_available",
    "compiled_available",
    "cross_block",
    "entity_cross_block",
    "gather_add",
    "gather_dot",
    "gather_gram",
    "gather_rows",
    "kernel_inventory",
    "logistic_sgd_step",
    "partial_scores",
    "result_dtype",
    "scatter_colsums",
    "scatter_crossprod",
    "scatter_right",
    "scatter_total",
    "set_active",
    "sgd_step",
    "take_indicator_rows",
    "using",
]

KERNEL_NAMES = (
    "gather_add", "scatter_right", "scatter_crossprod", "cross_block",
    "entity_cross_block", "gather_gram", "gather_rows", "scatter_colsums",
    "scatter_total", "gather_dot", "partial_scores", "sgd_step",
    "logistic_sgd_step", "take_indicator_rows",
)

#: When a fused cross_block would materialize a code-pair count matrix this
#: many times larger than the join itself, the sparse reference formula wins.
_CROSSING_DENSITY_LIMIT = 16


# ---------------------------------------------------------------------------
# Lazy late-bound helpers (repro.core / repro.ml import repro.la, not vice
# versa at module load -- resolving these inside the call breaks the cycle).
# ---------------------------------------------------------------------------

_indicator_codes: Optional[Callable] = None
_clip_scores: Optional[Callable] = None


def _codes(indicator: MatrixLike) -> np.ndarray:
    global _indicator_codes
    if _indicator_codes is None:
        from repro.core.indicator import indicator_codes
        _indicator_codes = indicator_codes
    return _indicator_codes(indicator)


def _clip(scores: np.ndarray) -> np.ndarray:
    global _clip_scores
    if _clip_scores is None:
        from repro.ml.metrics import clip_scores
        _clip_scores = clip_scores
    return _clip_scores(scores)


def _dense_result(x) -> np.ndarray:
    """Densify an operator result (mirror of ``la.generic.to_dense_result``)."""
    if hasattr(x, "to_dense"):
        return x.to_dense()
    return to_dense(x)


def result_dtype(*operands) -> np.dtype:
    """The floating result dtype of a factorized operator.

    Combines the dtypes of the *data* operands (entity, attribute tables,
    multiplier) -- indicator matrices are excluded by the callers because
    their stored float64 ones are structural, not data, and would silently
    upcast float32 pipelines.  Non-float combinations (integer/bool tables)
    resolve to float64: the accumulating kernels need a float accumulator.
    """
    dtypes = [op.dtype for op in operands
              if op is not None and hasattr(op, "dtype")]
    if not dtypes:
        return np.dtype(np.float64)
    dtype = np.result_type(*dtypes)
    if dtype.kind != "f":
        return np.dtype(np.float64)
    return dtype


def _tracing() -> bool:
    """True while golden-trace recording has patched this module's primitives.

    :func:`repro.core.rewrite.trace.trace_rewrites` wraps the
    :mod:`repro.la.ops` names imported here (this module is listed in its
    ``REWRITE_MODULES``); the wrappers carry ``__wrapped_primitive__``.  The
    dispatcher then forces the ``"reference"`` set so the recorded primitive
    sequence is exactly the pre-kernel rewrite algebra.
    """
    return hasattr(matmul, "__wrapped_primitive__")


# ---------------------------------------------------------------------------
# Reference implementations: the exact primitive chains of the rewrite rules
# ---------------------------------------------------------------------------

def _ref_gather_add(out: np.ndarray, indicator: MatrixLike,
                    attribute: MatrixLike, block: np.ndarray) -> np.ndarray:
    # K (R X): compute the small product first, then scatter through K.
    out += to_dense(matmul(indicator, matmul(attribute, block)))
    return out


def _ref_scatter_right(x: MatrixLike, indicator: MatrixLike,
                       attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    # (X K) R: the intermediate X K is only m x nR.
    block = to_dense(matmul(matmul(x, indicator), attribute))
    return np.asarray(block, dtype=dtype)


def _ref_scatter_crossprod(indicator: MatrixLike, attribute: MatrixLike,
                           dtype: np.dtype) -> np.ndarray:
    counts = colsums(indicator)
    scaled = diag_scale_rows(np.sqrt(np.asarray(counts).ravel()), attribute)
    return np.asarray(to_dense(crossprod(scaled)), dtype=dtype)


def _ref_cross_block(indicator_i: MatrixLike, indicator_j: MatrixLike,
                     attribute_i: MatrixLike, attribute_j: MatrixLike,
                     dtype: np.dtype) -> np.ndarray:
    crossing = matmul(transpose(indicator_i), indicator_j)
    block = to_dense(matmul(transpose(attribute_i), matmul(crossing, attribute_j)))
    return np.asarray(block, dtype=dtype)


def _ref_entity_cross_block(entity: MatrixLike, indicator: MatrixLike,
                            attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    # (S^T K) R: small intermediate of size dS x nR.
    partial = to_dense(matmul(matmul(transpose(entity), indicator), attribute))
    return np.asarray(partial, dtype=dtype)


def _ref_gather_gram(out: np.ndarray, indicator: MatrixLike,
                     attribute: MatrixLike) -> np.ndarray:
    inner = matmul(attribute, transpose(attribute))
    out += to_dense(matmul(matmul(indicator, inner), transpose(indicator)))
    return out


def _ref_gather_rows(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    return to_dense(matmul(indicator, rowsums(attribute)))


def _ref_scatter_colsums(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    return to_dense(matmul(colsums(indicator), attribute))


def _ref_scatter_total(indicator: MatrixLike, attribute: MatrixLike) -> float:
    partial = matmul(colsums(indicator), rowsums(attribute))
    return float(to_dense(partial).ravel()[0])


def _ref_gather_dot(base: np.ndarray, partials: Sequence[np.ndarray],
                    code_rows: Sequence[np.ndarray]) -> np.ndarray:
    out = np.array(base, dtype=np.float64)
    for partial, rows in zip(partials, code_rows):
        out += partial[rows, :]
    return out


def _ref_partial_scores(attribute: MatrixLike, weight_slice: np.ndarray) -> np.ndarray:
    partial = np.asarray(to_dense(attribute @ weight_slice), dtype=np.float64)
    if partial.ndim == 1:
        partial = partial.reshape(-1, 1)
    partial.setflags(write=False)
    return partial


def _ref_sgd_step(data, y: np.ndarray, w: np.ndarray,
                  step_size: float) -> Tuple[np.ndarray, float]:
    residual = _dense_result(data @ w) - y
    gradient = _dense_result(data.T @ residual)
    return w - step_size * gradient, float(np.sum(residual ** 2))


def _ref_logistic_sgd_step(data, y: np.ndarray, w: np.ndarray, step_size: float,
                           update: str) -> Tuple[np.ndarray, np.ndarray]:
    scores = _dense_result(data @ w)
    if update == "paper":
        p = y / (1.0 + np.exp(_clip(scores)))
    else:
        p = y / (1.0 + np.exp(_clip(y * scores)))
    w = w + step_size * _dense_result(data.T @ p)
    return w, scores


def _ref_take_indicator_rows(indicator: MatrixLike, indices: np.ndarray) -> MatrixLike:
    return indicator[indices, :]


# ---------------------------------------------------------------------------
# Fused NumPy implementations: single passes over indicator codes
# ---------------------------------------------------------------------------

def _np_gather_add(out: np.ndarray, indicator: MatrixLike,
                   attribute: MatrixLike, block: np.ndarray) -> np.ndarray:
    small = np.ascontiguousarray(to_dense(matmul(attribute, block)))
    # ndarray.take on a contiguous array is the fast gather path -- it beats
    # both generic fancy indexing and the one-nnz-per-row CSR matmul.
    out += small.take(_codes(indicator), axis=0)
    return out


def _scatter_columns(x: np.ndarray, codes: np.ndarray, n_cols: int) -> np.ndarray:
    """``X @ K`` without the CSR product: bin columns of ``x`` by code."""
    out = np.empty((x.shape[0], n_cols))
    for r in range(x.shape[0]):
        out[r] = np.bincount(codes, weights=x[r], minlength=n_cols)
    return out


def _np_scatter_right(x: MatrixLike, indicator: MatrixLike,
                      attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    if not isinstance(x, np.ndarray):
        return _ref_scatter_right(x, indicator, attribute, dtype)
    xk = _scatter_columns(np.ascontiguousarray(x, dtype=np.float64),
                          _codes(indicator), indicator.shape[1])
    return np.asarray(to_dense(matmul(xk, attribute)), dtype=dtype)


def _np_scatter_crossprod(indicator: MatrixLike, attribute: MatrixLike,
                          dtype: np.dtype) -> np.ndarray:
    counts = np.bincount(_codes(indicator), minlength=indicator.shape[1])
    if isinstance(attribute, np.ndarray):
        weights = counts.astype(dtype)
        return np.asarray((attribute * weights[:, None]).T @ attribute, dtype=dtype)
    scaled = diag_scale_rows(counts.astype(np.float64), attribute)
    return np.asarray(to_dense(matmul(transpose(attribute), scaled)), dtype=dtype)


def _np_cross_block(indicator_i: MatrixLike, indicator_j: MatrixLike,
                    attribute_i: MatrixLike, attribute_j: MatrixLike,
                    dtype: np.dtype) -> np.ndarray:
    ci, cj = _codes(indicator_i), _codes(indicator_j)
    ni, nj = indicator_i.shape[1], indicator_j.shape[1]
    if ni * nj > _CROSSING_DENSITY_LIMIT * max(ci.size, 1):
        # The dense code-pair histogram would dwarf the data; let the sparse
        # K_i^T K_j product exploit its own structure instead.
        return _ref_cross_block(indicator_i, indicator_j, attribute_i,
                                attribute_j, dtype)
    crossing = np.bincount(ci * nj + cj, minlength=ni * nj)
    crossing = crossing.astype(np.float64).reshape(ni, nj)
    inner = to_dense(matmul(crossing, attribute_j))
    block = to_dense(matmul(transpose(attribute_i), inner))
    return np.asarray(block, dtype=dtype)


def _np_entity_cross_block(entity: MatrixLike, indicator: MatrixLike,
                           attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    if not isinstance(entity, np.ndarray):
        return _ref_entity_cross_block(entity, indicator, attribute, dtype)
    sk = _scatter_columns(np.ascontiguousarray(entity.T, dtype=np.float64),
                          _codes(indicator), indicator.shape[1])
    return np.asarray(to_dense(matmul(sk, attribute)), dtype=dtype)


def _np_gather_gram(out: np.ndarray, indicator: MatrixLike,
                    attribute: MatrixLike) -> np.ndarray:
    inner = np.ascontiguousarray(to_dense(matmul(attribute, transpose(attribute))))
    codes = _codes(indicator)
    out += inner.take(codes, axis=0).take(codes, axis=1)
    return out


def _np_gather_rows(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    rs = np.ascontiguousarray(rowsums(attribute), dtype=np.float64)
    return rs.take(_codes(indicator), axis=0)


def _np_scatter_colsums(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    counts = np.bincount(_codes(indicator), minlength=indicator.shape[1])
    counts = counts.astype(np.float64).reshape(1, -1)
    return np.asarray(to_dense(matmul(counts, attribute)), dtype=np.float64)


def _np_scatter_total(indicator: MatrixLike, attribute: MatrixLike) -> float:
    counts = np.bincount(_codes(indicator), minlength=indicator.shape[1])
    rs = np.asarray(rowsums(attribute), dtype=np.float64).ravel()
    return float(counts.astype(np.float64) @ rs)


def _np_gather_dot(base: np.ndarray, partials: Sequence[np.ndarray],
                   code_rows: Sequence[np.ndarray]) -> np.ndarray:
    out = np.array(base, dtype=np.float64)
    for partial, rows in zip(partials, code_rows):
        out += partial.take(np.asarray(rows, dtype=np.intp), axis=0)
    return out


def _np_take_indicator_rows(indicator: MatrixLike, indices: np.ndarray) -> MatrixLike:
    if isinstance(indicator, ChainedIndicator) or not sp.issparse(indicator):
        return _ref_take_indicator_rows(indicator, indices)
    # One non-zero per row: the sliced CSR is fully determined by the gathered
    # codes, so build it directly instead of running generic fancy indexing.
    taken = np.ascontiguousarray(_codes(indicator)[indices], dtype=np.int64)
    n = taken.shape[0]
    return sp.csr_matrix(
        (np.ones(n, dtype=indicator.dtype), taken, np.arange(n + 1, dtype=np.int64)),
        shape=(n, indicator.shape[1]),
    )


# ---------------------------------------------------------------------------
# Numba-backed implementations (optional [kernels] extra)
# ---------------------------------------------------------------------------

_NUMBA_MODULE = False  # unresolved sentinel; None after a failed import


def _numba():
    global _NUMBA_MODULE
    if _NUMBA_MODULE is False:
        try:
            from repro.la import _numba_kernels
            _NUMBA_MODULE = _numba_kernels if _numba_kernels.AVAILABLE else None
        except Exception:  # pragma: no cover - defensive import guard
            _NUMBA_MODULE = None
    return _NUMBA_MODULE


def compiled_available() -> bool:
    """Whether the Numba-compiled kernel set can be activated."""
    return _numba() is not None


def _f64(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float64)


def _nb_gather_add(out: np.ndarray, indicator: MatrixLike,
                   attribute: MatrixLike, block: np.ndarray) -> np.ndarray:
    small = to_dense(matmul(attribute, block))
    if out.dtype != np.float64 or not out.flags.c_contiguous:
        out += small[_codes(indicator), :]
        return out
    _numba().gather_add_rows(out, _f64(small), _codes(indicator))
    return out


def _nb_scatter_right(x: MatrixLike, indicator: MatrixLike,
                      attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    if not isinstance(x, np.ndarray):
        return _ref_scatter_right(x, indicator, attribute, dtype)
    xk = _numba().scatter_columns(_f64(x), _codes(indicator), indicator.shape[1])
    return np.asarray(to_dense(matmul(xk, attribute)), dtype=dtype)


def _nb_entity_cross_block(entity: MatrixLike, indicator: MatrixLike,
                           attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    if not isinstance(entity, np.ndarray):
        return _ref_entity_cross_block(entity, indicator, attribute, dtype)
    sk = _numba().scatter_columns(_f64(entity.T), _codes(indicator),
                                  indicator.shape[1])
    return np.asarray(to_dense(matmul(sk, attribute)), dtype=dtype)


def _nb_gather_dot(base: np.ndarray, partials: Sequence[np.ndarray],
                   code_rows: Sequence[np.ndarray]) -> np.ndarray:
    out = np.ascontiguousarray(np.array(base, dtype=np.float64))
    for partial, rows in zip(partials, code_rows):
        _numba().gather_add_rows(out, _f64(partial),
                                 np.ascontiguousarray(rows, dtype=np.int64))
    return out


def _nb_sgd_step(data, y: np.ndarray, w: np.ndarray,
                 step_size: float) -> Tuple[np.ndarray, float]:
    predicted = _dense_result(data @ w)
    residual, sse = _numba().residual_sse(_f64(predicted), _f64(y))
    gradient = _dense_result(data.T @ residual)
    return w - step_size * gradient, float(sse)


def _nb_logistic_sgd_step(data, y: np.ndarray, w: np.ndarray, step_size: float,
                          update: str) -> Tuple[np.ndarray, np.ndarray]:
    from repro.ml.metrics import SCORE_CLIP

    scores = _dense_result(data @ w)
    p = _numba().logistic_response(_f64(scores), _f64(y),
                                   update == "exact", float(SCORE_CLIP))
    w = w + step_size * _dense_result(data.T @ p)
    return w, scores


# ---------------------------------------------------------------------------
# Registry and dispatch
# ---------------------------------------------------------------------------

_IMPLS: Dict[str, Dict[str, Callable]] = {
    "reference": {
        "gather_add": _ref_gather_add,
        "scatter_right": _ref_scatter_right,
        "scatter_crossprod": _ref_scatter_crossprod,
        "cross_block": _ref_cross_block,
        "entity_cross_block": _ref_entity_cross_block,
        "gather_gram": _ref_gather_gram,
        "gather_rows": _ref_gather_rows,
        "scatter_colsums": _ref_scatter_colsums,
        "scatter_total": _ref_scatter_total,
        "gather_dot": _ref_gather_dot,
        "partial_scores": _ref_partial_scores,
        "sgd_step": _ref_sgd_step,
        "logistic_sgd_step": _ref_logistic_sgd_step,
        "take_indicator_rows": _ref_take_indicator_rows,
    },
    "numpy": {
        "gather_add": _np_gather_add,
        "scatter_right": _np_scatter_right,
        "scatter_crossprod": _np_scatter_crossprod,
        "cross_block": _np_cross_block,
        "entity_cross_block": _np_entity_cross_block,
        "gather_gram": _np_gather_gram,
        "gather_rows": _np_gather_rows,
        "scatter_colsums": _np_scatter_colsums,
        "scatter_total": _np_scatter_total,
        "gather_dot": _np_gather_dot,
        "take_indicator_rows": _np_take_indicator_rows,
    },
    "numba": {
        "gather_add": _nb_gather_add,
        "scatter_right": _nb_scatter_right,
        "entity_cross_block": _nb_entity_cross_block,
        "gather_dot": _nb_gather_dot,
        "sgd_step": _nb_sgd_step,
        "logistic_sgd_step": _nb_logistic_sgd_step,
    },
}

_active: Optional[str] = None


def available_sets() -> Tuple[str, ...]:
    """The kernel sets that can be activated in this process."""
    sets: List[str] = ["reference", "numpy"]
    if compiled_available():
        sets.append("numba")
    return tuple(sets)


def best_available() -> str:
    """The fastest installed set: ``"numba"`` when importable, else ``"numpy"``."""
    return "numba" if compiled_available() else "numpy"


def _validate_set(name: str) -> str:
    if name not in _IMPLS:
        raise ValueError(
            f"unknown kernel set {name!r}; expected one of {sorted(_IMPLS)}"
        )
    if name == "numba" and not compiled_available():
        raise RuntimeError(
            "the numba kernel set needs the optional [kernels] extra "
            "(pip install 'repro-morpheus[kernels]')"
        )
    return name


def active() -> str:
    """The currently active kernel set name."""
    global _active
    if _active is None:
        pinned = os.environ.get("REPRO_KERNELS", "").strip()
        _active = _validate_set(pinned) if pinned else best_available()
    return _active


def set_active(name: str) -> str:
    """Activate one kernel set process-wide; returns the previous one."""
    global _active
    previous = active()
    _active = _validate_set(name)
    return previous


@contextlib.contextmanager
def using(name: str):
    """Temporarily activate one kernel set (test/benchmark helper)."""
    previous = set_active(name)
    try:
        yield
    finally:
        set_active(previous)


_DISPATCH_TOTAL = obs.REGISTRY.counter(
    "repro_kernel_dispatch_total",
    "Kernel dispatches by kernel name and resolved implementation set",
    labels=("kernel", "impl_set"),
)
_FALLBACKS_TOTAL = obs.REGISTRY.counter(
    "repro_kernel_fallback_total",
    "Dispatches where the active set lacked the kernel and a fallback ran",
    labels=("kernel", "wanted", "used"),
)


def _impl(name: str) -> Callable:
    if _tracing():
        return _IMPLS["reference"][name]
    active_set = active()
    impls = _IMPLS[active_set]
    fn = impls.get(name)
    resolved_set = active_set
    if fn is None:
        fn = _IMPLS["numpy"].get(name)
        resolved_set = "numpy"
        if fn is None:
            fn = _IMPLS["reference"][name]
            resolved_set = "reference"
        if obs.enabled():
            _FALLBACKS_TOTAL.labels(
                kernel=name, wanted=active_set, used=resolved_set
            ).inc()
    if obs.enabled():
        _DISPATCH_TOTAL.labels(kernel=name, impl_set=resolved_set).inc()
    return fn


def kernel_inventory() -> Dict[str, Tuple[str, ...]]:
    """Which sets implement each kernel (docs/diagnostics helper)."""
    return {name: tuple(s for s in ("reference", "numpy", "numba")
                        if name in _IMPLS[s])
            for name in KERNEL_NAMES}


# ---------------------------------------------------------------------------
# Public kernel entry points
# ---------------------------------------------------------------------------

def gather_add(out: np.ndarray, indicator: MatrixLike, attribute: MatrixLike,
               block: np.ndarray) -> np.ndarray:
    """Accumulate ``K (R @ block)`` into *out* (the LMM per-table term)."""
    return _impl("gather_add")(out, indicator, attribute, block)


def scatter_right(x: MatrixLike, indicator: MatrixLike, attribute: MatrixLike,
                  dtype: np.dtype) -> np.ndarray:
    """``(X K) R``: one RMM output block, cast to the operator result dtype."""
    return _impl("scatter_right")(x, indicator, attribute, dtype)


def scatter_crossprod(indicator: MatrixLike, attribute: MatrixLike,
                      dtype: np.dtype) -> np.ndarray:
    """``R^T (K^T K) R`` via the fan-out counts (diagonal cross-product block)."""
    return _impl("scatter_crossprod")(indicator, attribute, dtype)


def cross_block(indicator_i: MatrixLike, indicator_j: MatrixLike,
                attribute_i: MatrixLike, attribute_j: MatrixLike,
                dtype: np.dtype) -> np.ndarray:
    """``R_i^T (K_i^T K_j) R_j``: one off-diagonal cross-product block."""
    return _impl("cross_block")(indicator_i, indicator_j, attribute_i,
                                attribute_j, dtype)


def entity_cross_block(entity: MatrixLike, indicator: MatrixLike,
                       attribute: MatrixLike, dtype: np.dtype) -> np.ndarray:
    """``(S^T K) R``: the entity/table cross-product block."""
    return _impl("entity_cross_block")(entity, indicator, attribute, dtype)


def gather_gram(out: np.ndarray, indicator: MatrixLike,
                attribute: MatrixLike) -> np.ndarray:
    """Accumulate ``K (R R^T) K^T`` into *out* (the Gramian per-table term)."""
    return _impl("gather_gram")(out, indicator, attribute)


def gather_rows(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    """``K rowSums(R)`` as an ``(n, 1)`` column (rowSums per-table term)."""
    return _impl("gather_rows")(indicator, attribute)


def scatter_colsums(indicator: MatrixLike, attribute: MatrixLike) -> np.ndarray:
    """``colSums(K) R`` as a ``(1, d_R)`` row (colSums per-table term)."""
    return _impl("scatter_colsums")(indicator, attribute)


def scatter_total(indicator: MatrixLike, attribute: MatrixLike) -> float:
    """``colSums(K) rowSums(R)`` as a float (sum per-table term)."""
    return _impl("scatter_total")(indicator, attribute)


def gather_dot(base: np.ndarray, partials: Sequence[np.ndarray],
               code_rows: Sequence[np.ndarray]) -> np.ndarray:
    """Serving score assembly: *base* plus one partial-row gather per table."""
    return _impl("gather_dot")(base, partials, code_rows)


def partial_scores(attribute: MatrixLike, weight_slice: np.ndarray) -> np.ndarray:
    """One table's read-only partial-score block ``R_k @ W_k`` (``n_Rk x m``)."""
    return _impl("partial_scores")(attribute, weight_slice)


def sgd_step(data, y: np.ndarray, w: np.ndarray,
             step_size: float) -> Tuple[np.ndarray, float]:
    """One fused least-squares mini-batch step; returns ``(w_new, batch_sse)``."""
    return _impl("sgd_step")(data, y, w, step_size)


def logistic_sgd_step(data, y: np.ndarray, w: np.ndarray, step_size: float,
                      update: str) -> Tuple[np.ndarray, np.ndarray]:
    """One fused logistic mini-batch step; returns ``(w_new, batch_scores)``."""
    return _impl("logistic_sgd_step")(data, y, w, step_size, update)


def take_indicator_rows(indicator: MatrixLike, indices: np.ndarray) -> MatrixLike:
    """Row-take of an indicator; CSR indicators rebuild straight from codes."""
    return _impl("take_indicator_rows")(indicator, indices)
