"""Backend abstraction over concrete LA execution engines.

The paper's central architectural claim is *closure*: because Morpheus only
rewrites LA expressions into other LA expressions, it can run unchanged on any
system that exposes the basic operator set -- standalone R, Oracle R
Enterprise, SystemML, NumPy, and so on.  This module captures that idea as a
small :class:`Backend` interface with three implementations:

* :class:`DenseBackend` -- plain NumPy arrays (the analogue of standalone R
  with dense matrices).
* :class:`SparseBackend` -- SciPy CSR matrices (the analogue of R's ``Matrix``
  package used for the real sparse datasets).
* :class:`ChunkedBackend` -- the out-of-core, row-partitioned execution model
  of Oracle R Enterprise's ``ore.rowapply`` (see :mod:`repro.la.chunked`),
  used by the Table 9 / Table 10 scalability experiments.

The ML algorithms and rewrite rules never import a backend directly; they only
use the primitives from :mod:`repro.la.ops`, which operate on whatever operand
type a backend hands them.  Backends are used by the data generators and the
benchmark harness to decide how base-table matrices are *stored*.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotSupportedError
from repro.la.types import MatrixLike, to_dense, to_sparse


class Backend(abc.ABC):
    """Strategy object deciding how base-table matrices are materialized."""

    #: short identifier used in benchmark reports
    name: str = "abstract"
    #: capability metadata describing the execution family (reports and
    #: planner-adjacent tooling; the planner itself prices dispatch fan-out
    #: through :meth:`partitions_for`) -----------------------------------------
    #: whether sparse inputs keep a sparse representation in this storage
    preserves_sparsity: bool = False
    #: whether Table-1 operators fan out over parallel workers
    parallel: bool = False
    #: whether the storage is row-partitioned for out-of-core execution
    out_of_core: bool = False

    @abc.abstractmethod
    def from_dense(self, array: np.ndarray) -> MatrixLike:
        """Wrap a dense array in this backend's preferred storage."""

    @abc.abstractmethod
    def from_sparse(self, matrix: sp.spmatrix) -> MatrixLike:
        """Wrap a sparse matrix in this backend's preferred storage."""

    def zeros(self, shape: tuple) -> MatrixLike:
        """Return an all-zero matrix of the given shape in backend storage."""
        return self.from_dense(np.zeros(shape))

    def describe(self) -> str:
        """Human-readable one-line description used by benchmark reports."""
        return f"{self.name} backend"

    def partitions_for(self, n_rows: int) -> int:
        """How many row partitions an *n_rows* matrix splits into (1 = monolithic).

        The planner multiplies every primitive call by this fan-out when
        pricing dispatch overhead.
        """
        return 1

    def capabilities(self) -> dict:
        """Planner-facing capability metadata for this backend instance."""
        return {
            "name": self.name,
            "preserves_sparsity": self.preserves_sparsity,
            "parallel": self.parallel,
            "out_of_core": self.out_of_core,
        }


class DenseBackend(Backend):
    """Store every matrix as a dense ``numpy.ndarray``."""

    name = "dense"

    def from_dense(self, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(np.asarray(array, dtype=np.float64))

    def from_sparse(self, matrix: sp.spmatrix) -> np.ndarray:
        return to_dense(matrix).astype(np.float64)


class SparseBackend(Backend):
    """Store every matrix as a SciPy CSR matrix."""

    name = "sparse"
    preserves_sparsity = True

    def from_dense(self, array: np.ndarray) -> sp.csr_matrix:
        return sp.csr_matrix(np.asarray(array, dtype=np.float64))

    def from_sparse(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return to_sparse(matrix, "csr").astype(np.float64)


class FusedBackend(Backend):
    """Serial in-memory storage executed through the fused kernel registry.

    Storage is identical to :class:`DenseBackend` / :class:`SparseBackend`
    (dense stays dense, sparse stays CSR): what distinguishes this backend is
    *execution*, not layout.  Table-1 operators over normalized matrices run
    through :mod:`repro.la.kernels`, whose active implementation set collapses
    each factorized operator's indicator gather/scatter passes into a single
    compiled loop when Numba is installed (the ``[kernels]`` extra) and into
    vectorized NumPy indexing otherwise.  The planner scores a ``fused``
    candidate only when the compiled set is importable -- the NumPy set
    already serves every rewrite unconditionally, so there is nothing to
    choose when Numba is absent.
    """

    name = "fused"
    preserves_sparsity = True

    def from_dense(self, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(np.asarray(array, dtype=np.float64))

    def from_sparse(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return to_sparse(matrix, "csr").astype(np.float64)

    def capabilities(self) -> dict:
        from repro.la import kernels

        caps = super().capabilities()
        caps["compiled"] = kernels.compiled_available()
        caps["kernel_set"] = kernels.best_available()
        return caps

    def describe(self) -> str:
        from repro.la import kernels

        status = "numba" if kernels.compiled_available() else "numpy fallback"
        return f"fused kernel backend ({status})"


class ChunkedBackend(Backend):
    """Store matrices row-partitioned, emulating ORE's ``ore.rowapply``.

    Parameters
    ----------
    chunk_rows:
        Maximum number of rows per chunk.  Small values exercise the
        out-of-core code path aggressively; the scalability benchmarks use a
        few thousand rows per chunk.
    """

    name = "chunked"
    preserves_sparsity = True
    out_of_core = True

    def __init__(self, chunk_rows: int = 4096):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.chunk_rows = int(chunk_rows)

    def partitions_for(self, n_rows: int) -> int:
        return max(1, -(-int(n_rows) // self.chunk_rows))

    def from_dense(self, array: np.ndarray):
        from repro.la.chunked import ChunkedMatrix

        return ChunkedMatrix.from_matrix(np.asarray(array, dtype=np.float64), self.chunk_rows)

    def from_sparse(self, matrix: sp.spmatrix):
        from repro.la.chunked import ChunkedMatrix

        return ChunkedMatrix.from_matrix(to_sparse(matrix, "csr").astype(np.float64), self.chunk_rows)

    def describe(self) -> str:
        return f"chunked backend (chunk_rows={self.chunk_rows})"


class ShardedBackend(Backend):
    """Store matrices row-sharded with a worker pool (parallel execution).

    The parallel counterpart of :class:`ChunkedBackend`: matrices become
    :class:`~repro.core.shard.ShardedMatrix` instances whose Table-1
    operators fan out over the configured pool (see
    :mod:`repro.la.parallel`).

    Parameters
    ----------
    n_shards:
        Number of balanced row shards per matrix (clamped to the row count).
    pool:
        Pool specification passed through to
        :func:`repro.la.parallel.resolve_pool`; ``None`` selects a thread
        pool sized to the shard count.
    """

    name = "sharded"
    preserves_sparsity = True
    parallel = True

    def __init__(self, n_shards: int = 4, pool=None):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = int(n_shards)
        self.pool = pool

    def partitions_for(self, n_rows: int) -> int:
        return min(self.n_shards, max(1, int(n_rows)))

    def from_dense(self, array: np.ndarray):
        from repro.core.shard import ShardedMatrix

        return ShardedMatrix.from_matrix(
            np.asarray(array, dtype=np.float64), self.n_shards, pool=self.pool
        )

    def from_sparse(self, matrix: sp.spmatrix):
        from repro.core.shard import ShardedMatrix

        return ShardedMatrix.from_matrix(
            to_sparse(matrix, "csr").astype(np.float64), self.n_shards, pool=self.pool
        )

    def describe(self) -> str:
        return f"sharded backend (n_shards={self.n_shards})"


_REGISTRY = {
    "dense": DenseBackend,
    "sparse": SparseBackend,
    "fused": FusedBackend,
    "chunked": ChunkedBackend,
    "sharded": ShardedBackend,
}


def get_backend(name: str, chunk_rows: Optional[int] = None,
                n_shards: Optional[int] = None) -> Backend:
    """Look up a backend by name (``dense``, ``sparse``, ``fused``, ``chunked``
    or ``sharded``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise NotSupportedError(f"unknown backend {name!r}; expected one of {sorted(_REGISTRY)}")
    if key == "chunked":
        return ChunkedBackend(chunk_rows or 4096)
    if key == "sharded":
        return ShardedBackend(n_shards or 4)
    return _REGISTRY[key]()


def backend_capabilities() -> dict:
    """Capability metadata for every registered backend (default parameters).

    Describes the execution families the planner chooses among; the
    auto-planner benchmark embeds it in its results artifact so a plan JSON
    is self-describing.  (The planner itself prices dispatch fan-out through
    :meth:`Backend.partitions_for`.)
    """
    return {name: get_backend(name).capabilities() for name in _REGISTRY}
