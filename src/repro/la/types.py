"""Shared matrix type aliases and small structural predicates.

The library works with three families of operand:

* dense ``numpy.ndarray`` (2-D, or 1-D vectors that we promote to 2-D),
* SciPy sparse matrices (any format; CSR is the canonical internal format),
* the library's own logical types (``NormalizedMatrix``, ``ChunkedMatrix``).

The helpers in this module normalize the first two so the rest of the code
never needs to branch on ``isinstance`` checks scattered around.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.la.chain import ChainedIndicator

#: Anything accepted as a plain (non-normalized) matrix operand.
MatrixLike = Union[np.ndarray, sp.spmatrix]


def is_sparse(x: object) -> bool:
    """Return ``True`` if *x* is a SciPy sparse matrix (any format)."""
    return sp.issparse(x)


def is_chain(x: object) -> bool:
    """Return ``True`` if *x* is a multi-hop :class:`ChainedIndicator`."""
    return isinstance(x, ChainedIndicator)


def is_dense(x: object) -> bool:
    """Return ``True`` if *x* is a dense NumPy ndarray."""
    return isinstance(x, np.ndarray)


def is_matrix_like(x: object) -> bool:
    """Return ``True`` if *x* is a plain dense or sparse matrix."""
    return is_dense(x) or is_sparse(x)


def is_vector(x: object) -> bool:
    """Return ``True`` if *x* is a 1-D array or a 2-D array with one row/column."""
    if is_dense(x):
        return x.ndim == 1 or (x.ndim == 2 and 1 in x.shape)
    if is_sparse(x):
        return 1 in x.shape
    return False


def ensure_2d(x: MatrixLike) -> MatrixLike:
    """Promote 1-D dense vectors to column matrices; pass everything else through.

    Sparse matrices are always 2-D already.  Raises :class:`ShapeError` for
    inputs with more than two dimensions.
    """
    if is_sparse(x) or is_chain(x):
        return x
    arr = np.asarray(x)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    if arr.ndim == 2:
        return arr
    raise ShapeError(f"expected a 1-D or 2-D operand, got ndim={arr.ndim}")


def to_dense(x: MatrixLike) -> np.ndarray:
    """Return a dense ``ndarray`` view/copy of *x*."""
    if is_chain(x):
        x = x.tocsr()
    if is_sparse(x):
        return np.asarray(x.todense())
    return np.asarray(x)


def to_sparse(x: MatrixLike, fmt: str = "csr") -> sp.spmatrix:
    """Return *x* as a SciPy sparse matrix in the requested format."""
    if is_chain(x):
        x = x.tocsr()
    if is_sparse(x):
        return x.asformat(fmt)
    return sp.csr_matrix(np.atleast_2d(np.asarray(x))).asformat(fmt)


def shape_of(x: MatrixLike) -> tuple:
    """Return the 2-D shape of *x*, promoting 1-D vectors to column shape."""
    if is_sparse(x) or is_chain(x):
        return x.shape
    arr = np.asarray(x)
    if arr.ndim == 1:
        return (arr.shape[0], 1)
    return arr.shape


def check_same_shape(a: MatrixLike, b: MatrixLike, context: str = "operation") -> None:
    """Raise :class:`ShapeError` unless *a* and *b* have identical 2-D shapes."""
    sa, sb = shape_of(a), shape_of(b)
    if sa != sb:
        raise ShapeError(f"{context}: shape mismatch {sa} vs {sb}")


def normalize_row_indices(row_indices, n_rows: int) -> np.ndarray:
    """Validate a row-selection argument and return it as an ``int64`` index array.

    Accepts an integer index array (duplicates and arbitrary order allowed) or
    a boolean mask of length *n_rows*.  Float arrays are accepted only when
    every value is finite and exactly integral (``np.arange(5.0)`` and
    integer-valued columns round-tripped through float storage are common);
    anything fractional, non-finite, or of a non-numeric dtype raises
    :class:`ShapeError` -- silently truncating ``1.7`` to row ``1`` would
    select the wrong row instead of surfacing the caller's bug.  Used by
    every ``take_rows`` implementation so star-schema and M:N row selection
    reject bad input identically.
    """
    indices = np.asarray(row_indices)
    if indices.dtype == bool:
        if indices.ndim != 1 or indices.shape[0] != n_rows:
            raise ShapeError("boolean row mask length does not match the number of rows")
        return np.flatnonzero(indices)
    if not (np.issubdtype(indices.dtype, np.integer)
            or np.issubdtype(indices.dtype, np.floating)):
        raise ShapeError(
            f"row indices must be integers or a boolean mask, got dtype {indices.dtype}"
        )
    if np.issubdtype(indices.dtype, np.floating) and indices.size:
        if not np.all(np.isfinite(indices)):
            raise ShapeError("row indices must be finite integers, got NaN or infinity")
        if not np.array_equal(indices, np.trunc(indices)):
            raise ShapeError(
                "row indices must be integral; got non-integral float values "
                "(truncating them would silently select the wrong rows)"
            )
    indices = indices.astype(np.int64).ravel()
    if indices.size and (indices.min() < 0 or indices.max() >= n_rows):
        raise ShapeError("row indices out of range")
    return indices


def check_matmul_shapes(a_shape: tuple, b_shape: tuple, context: str = "matmul") -> None:
    """Raise :class:`ShapeError` unless ``a @ b`` is dimensionally valid."""
    if a_shape[1] != b_shape[0]:
        raise ShapeError(
            f"{context}: inner dimensions do not agree, {a_shape} @ {b_shape}"
        )
