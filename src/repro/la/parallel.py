"""Worker pools and the fan-out/reduce executor behind sharded execution.

The paper's scalability experiments (Section 5.2.4, Tables 9 and 10) stream
row chunks through a *serial* ORE-style loop; :mod:`repro.la.chunked` emulates
that faithfully.  This module provides the piece that loop is missing: a small
pool abstraction (:class:`SerialPool`, :class:`ThreadPool`,
:class:`ProcessPool`, or any user-supplied ``concurrent.futures`` executor)
and a :class:`ParallelExecutor` that fans a function out over row shards and
collects the partial results in order.

Morpheus-style factorized operators are embarrassingly parallel over row
shards of the entity and indicator matrices -- every Table-1 operator either
concatenates per-shard results (LMM, ``rowSums``, element-wise ops) or sums
them (RMM, ``crossprod``, ``colSums``, ``sum``) -- so the executor only ever
needs an order-preserving ``map``.  The sharded operand types in
:mod:`repro.core.shard` build on exactly that.

Pool choice matters because of the GIL (see ``docs/parallelism.md``): NumPy
and SciPy release the GIL inside their C kernels, so :class:`ThreadPool` is
the right default for LA-bound shard work, while :class:`ProcessPool` only
pays off when the per-shard work is Python-bound and large enough to amortize
pickling the shard operands.
"""

from __future__ import annotations

import abc
import contextvars
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro import obs

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

PoolSpec = Union[None, str, int, "WorkerPool", Executor]

_FANOUTS_TOTAL = obs.REGISTRY.counter(
    "repro_shard_fanouts_total",
    "ParallelExecutor.map fan-outs by pool kind",
    labels=("pool",),
)
_TASKS_TOTAL = obs.REGISTRY.counter(
    "repro_shard_tasks_total",
    "Per-shard tasks dispatched through ParallelExecutor.map",
    labels=("pool",),
)


def default_workers() -> int:
    """Default worker count: the machine's CPU count (at least one)."""
    return max(1, os.cpu_count() or 1)


class WorkerPool(abc.ABC):
    """Order-preserving ``map`` over a set of workers.

    Implementations must return results in input order -- the shard reducers
    rely on positional alignment (shard ``i``'s partial result lands at index
    ``i``).  Pools are reusable across many ``map`` calls; the underlying
    executor is created lazily on first use so constructing a pool is free.
    """

    #: short identifier used in benchmark reports and reprs
    name: str = "abstract"

    @abc.abstractmethod
    def map(self, fn: Callable[[_Item], _Result], items: Iterable[_Item]) -> List[_Result]:
        """Apply *fn* to every item, returning the results in input order."""

    def close(self) -> None:
        """Release worker resources (no-op for pools without state)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialPool(WorkerPool):
    """Run every task inline on the calling thread.

    This is the reference implementation the parallel pools must agree with
    bit for bit: the same shard functions run in the same order, so results
    are identical regardless of pool choice.
    """

    name = "serial"

    def map(self, fn: Callable[[_Item], _Result], items: Iterable[_Item]) -> List[_Result]:
        return [fn(item) for item in items]


class _ExecutorBackedPool(WorkerPool):
    """Shared lazy-construction logic for the ``concurrent.futures`` pools."""

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._executor: Optional[Executor] = None

    @abc.abstractmethod
    def _make_executor(self) -> Executor:
        """Build the underlying executor (called once, on first map)."""

    def map(self, fn: Callable[[_Item], _Result], items: Iterable[_Item]) -> List[_Result]:
        if self._executor is None:
            self._executor = self._make_executor()
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadPool(_ExecutorBackedPool):
    """Shard work over a ``ThreadPoolExecutor`` (the default pool).

    Threads share the shard operands by reference (no pickling) and NumPy /
    SciPy kernels release the GIL, so this pool parallelizes LA-bound shard
    work with essentially zero dispatch cost.
    """

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.max_workers or default_workers())


class ProcessPool(_ExecutorBackedPool):
    """Shard work over a ``ProcessPoolExecutor``.

    Every task's callable *and* operands are pickled to the worker processes,
    so this pool requires module-level shard functions (the ones in
    :mod:`repro.core.shard` qualify) and pays a per-call serialization cost
    proportional to the shard size.  Use it only for Python-bound shard work;
    see ``docs/parallelism.md`` for the tradeoff.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.max_workers or default_workers())


class ExecutorPool(WorkerPool):
    """Adapter wrapping a user-supplied ``concurrent.futures`` executor.

    The caller keeps ownership: :meth:`close` does *not* shut the executor
    down, so one application-level pool can serve many sharded matrices.
    """

    name = "executor"

    def __init__(self, executor: Executor):
        if not isinstance(executor, Executor):
            raise TypeError(f"expected a concurrent.futures.Executor, got {type(executor).__name__}")
        self.executor = executor

    def map(self, fn: Callable[[_Item], _Result], items: Iterable[_Item]) -> List[_Result]:
        return list(self.executor.map(fn, items))


_NAMED_POOLS = {
    "serial": SerialPool,
    "thread": ThreadPool,
    "process": ProcessPool,
}


def resolve_pool(pool: PoolSpec = None, default_max_workers: Optional[int] = None) -> WorkerPool:
    """Coerce a pool specification to a :class:`WorkerPool`.

    Accepted specifications:

    * ``None`` -- a :class:`ThreadPool` (the right default for LA-bound work);
    * a string -- ``"serial"``, ``"thread"`` or ``"process"``;
    * an int -- a :class:`ThreadPool` with that many workers;
    * a ``concurrent.futures`` executor -- wrapped in :class:`ExecutorPool`;
    * a :class:`WorkerPool` -- returned as-is.

    *default_max_workers* bounds the worker count for pools this function
    constructs (callers pass the shard count, since more workers than shards
    is pure overhead); explicit pool instances are never resized.
    """
    if isinstance(pool, WorkerPool):
        return pool
    if pool is None:
        return ThreadPool(max_workers=default_max_workers)
    if isinstance(pool, str):
        key = pool.lower()
        if key not in _NAMED_POOLS:
            raise ValueError(f"unknown pool {pool!r}; expected one of {sorted(_NAMED_POOLS)}")
        if key == "serial":
            return SerialPool()
        return _NAMED_POOLS[key](max_workers=default_max_workers)
    if isinstance(pool, bool):
        raise TypeError("pool must be a pool spec, not a bool")
    if isinstance(pool, int):
        if pool < 1:
            raise ValueError("pool worker count must be at least 1")
        return ThreadPool(max_workers=pool)
    if isinstance(pool, Executor):
        return ExecutorPool(pool)
    raise TypeError(f"cannot build a worker pool from {type(pool).__name__}")


class ParallelExecutor:
    """Fans shard-local work out across a pool and reduces the partials.

    This is the one seam every sharded operand type shares: hand it a
    module-level shard function (so process pools can pickle it) and a list of
    per-shard argument tuples; get the ordered partial results back, ready for
    a concatenating or summing reduction.  A single-item fan-out skips the
    pool entirely -- one shard is serial by construction, which also makes
    ``n_shards=1`` bit-for-bit identical to unsharded execution.
    """

    def __init__(self, pool: PoolSpec = None, default_max_workers: Optional[int] = None):
        self.pool = resolve_pool(pool, default_max_workers=default_max_workers)

    def map(self, fn: Callable[[_Item], _Result], items: Sequence[_Item]) -> List[_Result]:
        """Apply *fn* to every item through the pool, preserving order."""
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if obs.enabled():
            _FANOUTS_TOTAL.labels(pool=self.pool.name).inc()
            _TASKS_TOTAL.labels(pool=self.pool.name).inc(len(items))
            if obs.current_span() is not None and self.pool.name == "thread":
                # Carry the active span into the worker threads so shard-local
                # work nests under the caller's span.  Each task runs in its
                # own copy of the captured context (a Context object cannot be
                # entered concurrently).  Process/executor pools may cross a
                # pickle boundary, so their shard work stays un-parented.
                with obs.span("shard.map", pool=self.pool.name, tasks=len(items)):
                    ctx = contextvars.copy_context()
                    return self.pool.map(
                        lambda item: ctx.copy().run(fn, item), items
                    )
        return self.pool.map(fn, items)

    def map_reduce(self, fn: Callable[[_Item], _Result], items: Sequence[_Item],
                   reduce_fn: Callable[[List[_Result]], _Result]) -> _Result:
        """Fan out with :meth:`map`, then combine the partials with *reduce_fn*."""
        return reduce_fn(self.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(pool={self.pool.name})"
