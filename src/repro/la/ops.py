"""Uniform linear-algebra primitives over dense and sparse operands.

Every Morpheus rewrite rule (see :mod:`repro.core.rewrite`) is expressed only
in terms of the functions defined here plus ordinary ``@`` matrix products.
Keeping this layer small and uniform is what gives the framework closure with
respect to linear algebra: rewritten expressions never need anything that a
generic LA system (R, NumPy, SystemML, ...) would not provide.

All functions accept either ``numpy.ndarray`` or ``scipy.sparse`` operands and
return results in a natural type (aggregations return dense vectors, products
of two sparse operands stay sparse, and so on).
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np
import scipy.sparse as sp
from numpy.linalg import pinv as _dense_pinv

from repro.exceptions import ShapeError
from repro.la.types import MatrixLike, ensure_2d, is_chain, is_sparse, to_dense

Scalar = Union[int, float, np.floating, np.integer]


# ---------------------------------------------------------------------------
# Aggregations
# ---------------------------------------------------------------------------

def rowsums(x: MatrixLike) -> np.ndarray:
    """Row-wise sum of *x* as an ``(n, 1)`` dense column vector.

    Mirrors R's ``rowSums``; used by the aggregation rewrite rules and by
    K-Means (squared-norm pre-computation).
    """
    x = ensure_2d(x)
    if is_sparse(x) or is_chain(x):
        return np.asarray(x.sum(axis=1)).reshape(-1, 1)
    return np.asarray(x).sum(axis=1, keepdims=True)


def colsums(x: MatrixLike) -> np.ndarray:
    """Column-wise sum of *x* as a ``(1, d)`` dense row vector (R's ``colSums``)."""
    x = ensure_2d(x)
    if is_sparse(x) or is_chain(x):
        return np.asarray(x.sum(axis=0)).reshape(1, -1)
    return np.asarray(x).sum(axis=0, keepdims=True)


def total_sum(x: MatrixLike) -> float:
    """Sum of all elements of *x* (R's ``sum``)."""
    x = ensure_2d(x)
    return float(x.sum())


def row_min(x: MatrixLike) -> np.ndarray:
    """Row-wise minimum of *x* as an ``(n, 1)`` dense column vector.

    Needed by K-Means for the nearest-centroid assignment
    (``rowMin(D)`` in Algorithm 7/15 of the paper).  Sparse inputs are
    densified because minima over implicit zeros are not meaningful for
    distance matrices, which are dense in practice.
    """
    dense = to_dense(ensure_2d(x))
    return dense.min(axis=1, keepdims=True)


def nnz(x: MatrixLike) -> int:
    """Number of structurally non-zero elements of *x*."""
    if is_sparse(x) or is_chain(x):
        return int(x.nnz)
    return int(np.count_nonzero(np.asarray(x)))


# ---------------------------------------------------------------------------
# Products
# ---------------------------------------------------------------------------

def matmul(a: MatrixLike, b: MatrixLike) -> MatrixLike:
    """Matrix product ``a @ b`` handling every dense/sparse combination.

    The result is dense whenever either operand is dense (matching NumPy and
    R semantics for mixed products), and sparse when both operands are sparse.
    """
    a2, b2 = ensure_2d(a), ensure_2d(b)
    if a2.shape[1] != b2.shape[0]:
        raise ShapeError(f"matmul: inner dimensions do not agree {a2.shape} @ {b2.shape}")
    if is_chain(a2):
        # Chained indicators fold their hops one sparse product at a time
        # (small end first), never materializing the chain product.
        return a2 @ b2
    if is_chain(b2):
        return b2.__rmatmul__(a2)
    if is_sparse(a2) and is_sparse(b2):
        return a2 @ b2
    if is_sparse(a2):
        return np.asarray(a2 @ b2)
    if is_sparse(b2):
        # ndarray @ sparse returns np.matrix in old scipy; normalize to ndarray.
        return np.asarray(a2 @ b2)
    return a2 @ b2


def crossprod(x: MatrixLike) -> MatrixLike:
    """Gram matrix ``x.T @ x`` (R's ``crossprod``), densified for sparse input.

    The output of a cross-product is a ``d x d`` matrix that is almost always
    dense even when ``x`` is sparse, so we return a dense array for sparse
    inputs to avoid carrying around dense data in a sparse container.
    """
    x = ensure_2d(x)
    out = x.T @ x
    if is_sparse(out):
        return np.asarray(out.todense())
    return np.asarray(out)


def transpose(x: MatrixLike) -> MatrixLike:
    """Transpose of a plain matrix operand."""
    return ensure_2d(x).T


def ginv(x: MatrixLike, rcond: float = 1e-12) -> np.ndarray:
    """Moore-Penrose pseudo-inverse (R's ``MASS::ginv``), always dense.

    The paper's rewrite rules reduce ``ginv`` over a normalized matrix to
    ``ginv`` over a small ``d x d`` or ``n x n`` cross-product, so densifying
    here is cheap in all intended uses.
    """
    return _dense_pinv(to_dense(ensure_2d(x)), rcond=rcond)


def solve_regularized(gram: MatrixLike, rhs: MatrixLike, ridge: float = 0.0) -> np.ndarray:
    """Solve ``(gram + ridge * I) w = rhs`` with a pseudo-inverse fallback.

    Utility for the normal-equation linear regression: when the Gram matrix is
    singular we fall back to the pseudo-inverse rather than failing.
    """
    gram_d = to_dense(ensure_2d(gram))
    rhs_d = to_dense(ensure_2d(rhs))
    if ridge:
        gram_d = gram_d + ridge * np.eye(gram_d.shape[0])
    try:
        return np.linalg.solve(gram_d, rhs_d)
    except np.linalg.LinAlgError:
        return _dense_pinv(gram_d) @ rhs_d


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------

def sparse_diag(values: MatrixLike) -> sp.spmatrix:
    """Build a sparse diagonal matrix from a vector of values (R's ``diag``)."""
    vec = np.asarray(to_dense(values)).ravel()
    return sp.diags(vec, format="csr")


def diag_scale_rows(values: MatrixLike, x: MatrixLike) -> MatrixLike:
    """Compute ``diag(values) @ x`` without materializing the diagonal densely.

    This is the building block of the efficient cross-product rewrite
    (Algorithm 2): ``crossprod(diag(colSums(K)) ** 0.5 @ R)``.
    """
    vec = np.asarray(to_dense(values)).ravel()
    x = ensure_2d(x)
    if vec.shape[0] != x.shape[0]:
        raise ShapeError(
            f"diag_scale_rows: {vec.shape[0]} scaling values for {x.shape[0]} rows"
        )
    if is_sparse(x):
        return sparse_diag(vec) @ x
    return vec[:, None] * np.asarray(x)


def hstack(blocks: Sequence[MatrixLike]) -> MatrixLike:
    """Horizontally concatenate blocks, staying sparse only if all are sparse."""
    blocks = [ensure_2d(b) for b in blocks if b is not None and 0 not in ensure_2d(b).shape]
    if not blocks:
        raise ShapeError("hstack: no non-empty blocks to concatenate")
    if all(is_sparse(b) for b in blocks):
        return sp.hstack(blocks, format="csr")
    return np.hstack([to_dense(b) for b in blocks])


def vstack(blocks: Sequence[MatrixLike]) -> MatrixLike:
    """Vertically concatenate blocks, staying sparse only if all are sparse."""
    blocks = [ensure_2d(b) for b in blocks if b is not None and 0 not in ensure_2d(b).shape]
    if not blocks:
        raise ShapeError("vstack: no non-empty blocks to concatenate")
    if all(is_sparse(b) for b in blocks):
        return sp.vstack(blocks, format="csr")
    return np.vstack([to_dense(b) for b in blocks])


def block_2x2(upper_left: MatrixLike, upper_right: MatrixLike,
              lower_left: MatrixLike, lower_right: MatrixLike) -> np.ndarray:
    """Assemble a dense 2x2 block matrix (used by the cross-product rewrites)."""
    top = np.hstack([to_dense(upper_left), to_dense(upper_right)])
    bottom = np.hstack([to_dense(lower_left), to_dense(lower_right)])
    return np.vstack([top, bottom])


def block_grid(blocks: Sequence[Sequence[MatrixLike]]) -> np.ndarray:
    """Assemble a dense block matrix from a 2-D grid of blocks."""
    rows = [np.hstack([to_dense(b) for b in row]) for row in blocks]
    return np.vstack(rows)


def indicator_from_labels(labels: MatrixLike, num_columns: int | None = None) -> sp.csr_matrix:
    """Build a sparse 0/1 indicator matrix from integer row labels.

    ``labels[i] = j`` produces a matrix ``K`` with ``K[i, j] = 1``.  This is
    exactly the paper's construction of the PK-FK indicator matrix from the
    foreign-key column (Section 3.1) and of ``IS``/``IR`` for M:N joins
    (Section 3.6).  Labels are zero-based.
    """
    lab = np.asarray(to_dense(labels)).ravel().astype(np.int64)
    if lab.size and lab.min() < 0:
        raise ShapeError("indicator_from_labels: labels must be non-negative")
    n_rows = lab.shape[0]
    n_cols = int(lab.max()) + 1 if lab.size else 0
    if num_columns is not None:
        if lab.size and num_columns <= lab.max():
            raise ShapeError(
                f"indicator_from_labels: num_columns={num_columns} too small for max label {lab.max()}"
            )
        n_cols = num_columns
    data = np.ones(n_rows, dtype=np.float64)
    return sp.csr_matrix((data, (np.arange(n_rows), lab)), shape=(n_rows, n_cols))


# ---------------------------------------------------------------------------
# Element-wise operations
# ---------------------------------------------------------------------------

_SCALAR_OPS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "**": lambda a, b: a ** b,
}


def scalar_op(x: MatrixLike, op: str, scalar: Scalar, reverse: bool = False) -> MatrixLike:
    """Apply an element-wise arithmetic op between matrix *x* and a scalar.

    ``reverse=True`` computes ``scalar op x`` instead of ``x op scalar``, which
    matters for the non-commutative ``-``, ``/`` and ``**``.

    Sparse operands are densified for operations that do not preserve sparsity
    (addition/subtraction of a non-zero scalar, division by the matrix, and
    exponentiation with the matrix in the exponent).
    """
    if op not in _SCALAR_OPS:
        raise ValueError(f"unsupported scalar op {op!r}")
    fn = _SCALAR_OPS[op]
    x = ensure_2d(x)
    sparsity_breaking = (
        (op in ("+", "-") and scalar != 0)
        or (op == "/" and reverse)
        or (op == "**" and reverse)
    )
    if is_sparse(x) and sparsity_breaking:
        x = to_dense(x)
    if is_sparse(x) and op == "**" and not reverse:
        return x.power(scalar)
    if reverse:
        return fn(scalar, x)
    return fn(x, scalar)


def elementwise(x: MatrixLike, fn: Callable[[np.ndarray], np.ndarray]) -> MatrixLike:
    """Apply a scalar function (``exp``, ``log1p``, ``sin`` ...) element-wise.

    For sparse inputs the function is applied to the stored values only, which
    is correct when ``fn(0) == 0`` (the common case in ML scripts, e.g.
    squaring).  When ``fn(0) != 0`` the matrix is densified first so that the
    implicit zeros are transformed too.
    """
    x = ensure_2d(x)
    if is_sparse(x):
        probe = float(fn(np.zeros(1))[0])
        if probe == 0.0:
            out = x.tocsr(copy=True)
            out.data = fn(out.data)
            return out
        return fn(to_dense(x))
    return fn(np.asarray(x))


def allclose(a: MatrixLike, b: MatrixLike, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
    """Numerically compare two matrix-likes after densification."""
    da, db = to_dense(ensure_2d(a)), to_dense(ensure_2d(b))
    if da.shape != db.shape:
        return False
    return bool(np.allclose(da, db, rtol=rtol, atol=atol))
