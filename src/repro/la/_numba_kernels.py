"""Numba-compiled inner loops for the fused kernel layer.

Import-guarded: :mod:`repro.la.kernels` only activates the ``"numba"`` set
when ``AVAILABLE`` is true, so this module must import cleanly without Numba
installed (the optional ``[kernels]`` extra).  Every function here takes
contiguous float64/int64 arrays -- the wrappers in ``kernels.py`` own the
layout coercion and all sparse/chain fallbacks -- and fuses one
gather-multiply-reduce shape into a single compiled pass, which is where the
chains of NumPy temporaries lose: each temporary is an extra full-size
allocation plus an extra memory walk.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit, prange
    AVAILABLE = True
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Decorator stub so the module stays importable without Numba."""
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn

    prange = range


@njit(parallel=True, cache=True)
def gather_add_rows(out, small, codes):
    """``out[i, :] += small[codes[i], :]`` -- the fused LMM/serving gather."""
    n, m = out.shape
    for i in prange(n):
        row = codes[i]
        for j in range(m):
            out[i, j] += small[row, j]


@njit(parallel=True, cache=True)
def scatter_columns(x, codes, n_cols):
    """``X @ K`` as a code-binned column scatter (fused RMM / S^T K pass)."""
    n_rows, n = x.shape
    out = np.zeros((n_rows, n_cols))
    for r in prange(n_rows):
        for t in range(n):
            out[r, codes[t]] += x[r, t]
    return out


@njit(parallel=True, cache=True)
def residual_sse(predicted, y):
    """Fused ``residual = predicted - y`` and ``sum(residual ** 2)``."""
    n, m = predicted.shape
    residual = np.empty((n, m))
    sse = 0.0
    for i in prange(n):
        for j in range(m):
            r = predicted[i, j] - y[i, j]
            residual[i, j] = r
            sse += r * r
    return residual, sse


@njit(parallel=True, cache=True)
def logistic_response(scores, y, exact, clip):
    """Fused clipped logistic response ``y / (1 + exp(clip(margin)))``."""
    n, m = scores.shape
    p = np.empty((n, m))
    for i in prange(n):
        for j in range(m):
            margin = y[i, j] * scores[i, j] if exact else scores[i, j]
            if margin > clip:
                margin = clip
            elif margin < -clip:
                margin = -clip
            p[i, j] = y[i, j] / (1.0 + np.exp(margin))
    return p
