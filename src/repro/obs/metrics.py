"""Thread-safe labeled metrics: counters, gauges, histograms.

The observability layer is gated by a single process-global switch
(:func:`enable` / :func:`disable`, or the ``REPRO_OBS`` environment
variable).  When the gate is off every ``inc``/``set``/``observe`` call
returns after a single attribute check, so instrumented hot paths cost
near zero.  Series created with ``always=True`` record unconditionally;
they back the pre-existing ad-hoc counters (cache hit counts, serving
stats) whose accessors must keep working whether or not observability
is enabled.

Design notes:

- This module depends only on the standard library and numpy so every
  layer of the stack (``la``, ``core``, ``serve``, ``ml``) can import it
  without cycles.
- Histograms keep incremental cumulative bucket counts (for Prometheus
  exposition) plus a bounded window of raw samples so ``quantile`` is
  numpy-exact while observation counts fit the window.
"""

from __future__ import annotations

import bisect
import os
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "REGISTRY",
    "disable",
    "enable",
    "enabled",
    "get_registry",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Return True when the process-global observability gate is on."""
    return _enabled


def enable() -> None:
    """Turn on metric recording and tracing for gated series."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn off metric recording and tracing for gated series."""
    global _enabled
    _enabled = False


def _check_label_values(values: Sequence[str]) -> Tuple[str, ...]:
    return tuple(str(v) for v in values)


class Counter:
    """Monotonically increasing counter series."""

    __slots__ = ("_always", "_lock", "_value")

    def __init__(self, always: bool = False) -> None:
        self._value = 0.0
        self._lock = threading.Lock()
        self._always = bool(always)

    def inc(self, amount: float = 1.0) -> None:
        if not (self._always or _enabled):
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Point-in-time value series (can go up and down)."""

    __slots__ = ("_always", "_lock", "_value")

    def __init__(self, always: bool = False) -> None:
        self._value = 0.0
        self._lock = threading.Lock()
        self._always = bool(always)

    def set(self, value: float) -> None:
        if not (self._always or _enabled):
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not (self._always or _enabled):
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


#: Default latency-oriented bucket upper bounds, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: How many raw observations a histogram retains for exact quantiles.
SAMPLE_WINDOW = 4096


class Histogram:
    """Histogram series: cumulative buckets plus a raw-sample window."""

    __slots__ = ("_always", "_counts", "_lock", "_samples", "_sum", "_total", "_uppers")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        always: bool = False,
        window: int = SAMPLE_WINDOW,
    ) -> None:
        uppers = sorted(float(b) for b in buckets)
        if not uppers:
            raise ValueError("histogram needs at least one bucket bound")
        self._uppers = tuple(uppers)
        # one slot per finite bucket plus the +Inf overflow bucket
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._total = 0
        self._samples: deque = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._always = bool(always)

    def observe(self, value: float) -> None:
        if not (self._always or _enabled):
            return
        value = float(value)
        idx = bisect.bisect_left(self._uppers, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._total += 1
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Exact quantile over the retained sample window (numpy linear)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return float("nan")
        return float(np.percentile(np.asarray(samples, dtype=float), q * 100.0))

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus style."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, n in zip(self._uppers, counts):
            running += n
            out.append((upper, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._uppers) + 1)
            self._sum = 0.0
            self._total = 0
            self._samples.clear()


class _Family:
    """A named metric with a fixed label schema and per-labelset series."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        always: bool,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.always = bool(always)
        self._series: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: str, **kw: str):
        if values and kw:
            raise ValueError("pass label values positionally or by name, not both")
        if kw:
            try:
                values = tuple(kw[n] for n in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name!r} expects labels {self.label_names}"
                ) from exc
        key = _check_label_values(values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects {len(self.label_names)} label values, "
                f"got {len(key)}"
            )
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = self._make_series()
                    self._series[key] = series
        return series

    def _default(self):
        return self.labels()

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._series.items())

    def reset(self) -> None:
        with self._lock:
            series = list(self._series.values())
        for s in series:
            s.reset()  # type: ignore[attr-defined]


class CounterFamily(_Family):
    kind = "counter"

    def _make_series(self) -> Counter:
        return Counter(always=self.always)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return sum(s.value for _, s in self.series())


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_series(self) -> Gauge:
        return Gauge(always=self.always)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        always: bool,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, always)
        self.bucket_bounds = tuple(sorted(float(b) for b in buckets))

    def _make_series(self) -> Histogram:
        return Histogram(buckets=self.bucket_bounds, always=self.always)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)

    @property
    def count(self) -> int:
        return sum(s.count for _, s in self.series())


_VALID_NAME = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


class MetricsRegistry:
    """Process-global catalog of metric families, keyed by name."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, factory) -> _Family:
        if not name or set(name) - _VALID_NAME or name[0].isdigit():
            raise ValueError(f"invalid metric name: {name!r}")
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = factory()
                    self._families[name] = family
                    return family
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        always: bool = False,
    ) -> CounterFamily:
        family = self._register(name, lambda: CounterFamily(name, help, labels, always))
        if not isinstance(family, CounterFamily):
            raise ValueError(f"metric {name!r} already registered as {family.kind}")
        return family

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        always: bool = False,
    ) -> GaugeFamily:
        family = self._register(name, lambda: GaugeFamily(name, help, labels, always))
        if not isinstance(family, GaugeFamily):
            raise ValueError(f"metric {name!r} already registered as {family.kind}")
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        always: bool = False,
    ) -> HistogramFamily:
        family = self._register(
            name, lambda: HistogramFamily(name, help, labels, always, buckets=buckets)
        )
        if not isinstance(family, HistogramFamily):
            raise ValueError(f"metric {name!r} already registered as {family.kind}")
        return family

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def reset(self) -> None:
        """Zero every series in every family (keeps registrations)."""
        for family in self.families():
            family.reset()

    def collect(self) -> List[dict]:
        """Snapshot every family into plain dicts (export-friendly)."""
        out: List[dict] = []
        for family in self.families():
            entry: dict = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": [],
            }
            for key, series in family.series():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    entry["series"].append(
                        {
                            "labels": labels,
                            "count": series.count,  # type: ignore[attr-defined]
                            "sum": series.sum,  # type: ignore[attr-defined]
                            "buckets": [
                                [upper, count]
                                for upper, count in series.buckets()  # type: ignore[attr-defined]
                            ],
                        }
                    )
                else:
                    entry["series"].append(
                        {"labels": labels, "value": series.value}  # type: ignore[attr-defined]
                    )
            out.append(entry)
        return out


#: The process-global registry used by all built-in instrumentation.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def iter_metric_values(
    registry: Optional[MetricsRegistry] = None,
) -> Iterable[Tuple[str, dict, object]]:
    """Yield ``(name, labels, series)`` across all families."""
    reg = registry if registry is not None else REGISTRY
    for family in reg.families():
        for key, series in family.series():
            yield family.name, dict(zip(family.label_names, key)), series
