"""Contextvar-propagated span trees with wall-clock and CPU timings.

Spans form trees: entering :func:`span` while another span is active
attaches the new span as a child.  The active span travels through a
``contextvars.ContextVar``, so propagating it into worker threads only
requires running the task inside ``contextvars.copy_context()`` (the
shard pool does this when tracing is enabled).

Everything here is a no-op when the observability gate
(:func:`repro.obs.metrics.enabled`) is off: ``@traced`` calls the wrapped
function directly and ``span()`` yields a shared null object, so the
disabled-mode overhead is one boolean check per call.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from . import metrics as _metrics

__all__ = [
    "Span",
    "annotate",
    "clear_spans",
    "current_span",
    "recent_spans",
    "span",
    "traced",
]


class Span:
    """One timed region: name, wall/CPU duration, attributes, children."""

    __slots__ = (
        "attrs",
        "children",
        "cpu_end",
        "cpu_start",
        "name",
        "wall_end",
        "wall_start",
        "_lock",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.wall_start = time.perf_counter()
        self.cpu_start = time.process_time()
        self.wall_end: Optional[float] = None
        self.cpu_end: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def _add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def _finish(self) -> None:
        self.wall_end = time.perf_counter()
        self.cpu_end = time.process_time()

    @property
    def wall_seconds(self) -> float:
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def cpu_seconds(self) -> float:
        end = self.cpu_end if self.cpu_end is not None else time.process_time()
        return end - self.cpu_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """ASCII tree of this span and its descendants."""
        pad = "  " * indent
        attrs = ""
        if self.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
            attrs = f" [{inner}]"
        lines = [
            f"{pad}{self.name}: wall={self.wall_seconds * 1e3:.3f}ms "
            f"cpu={self.cpu_seconds * 1e3:.3f}ms{attrs}"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_seconds:.6f}s, children={len(self.children)})"


class _NullSpan:
    """Shared no-op stand-in yielded by ``span()`` when disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def wall_seconds(self) -> float:
        return 0.0

    @property
    def cpu_seconds(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()

_current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Completed root span trees, newest last, bounded.
_ROOT_WINDOW = 256
_roots: deque = deque(maxlen=_ROOT_WINDOW)
_roots_lock = threading.Lock()


def current_span() -> Optional[Span]:
    """The innermost active span in this context, or None."""
    return _current.get()


def annotate(**attrs: Any) -> None:
    """Attach attributes to the active span; no-op without one."""
    active = _current.get()
    if active is not None:
        active.set(**attrs)


def recent_spans() -> List[Span]:
    """Completed root spans, oldest first (bounded window)."""
    with _roots_lock:
        return list(_roots)


def clear_spans() -> None:
    with _roots_lock:
        _roots.clear()


@contextmanager
def span(name: str, **attrs: Any):
    """Context manager opening a traced span; no-op when disabled."""
    if not _metrics.enabled():
        yield _NULL_SPAN
        return
    current = Span(name, attrs)
    parent = _current.get()
    token = _current.set(current)
    try:
        yield current
    finally:
        current._finish()
        _current.reset(token)
        if parent is not None:
            parent._add_child(current)
        else:
            with _roots_lock:
                _roots.append(current)


def traced(name: Optional[str] = None, **attrs: Any):
    """Decorator tracing a function call; direct call when disabled.

    Usable bare (``@traced``) or with a span name (``@traced("fit")``).
    """
    if callable(name):  # bare @traced
        fn = name
        return traced(None)(fn)

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _metrics.enabled():
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
