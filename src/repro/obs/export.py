"""Exporters for the metrics registry and recorded span trees.

Three output formats:

- :func:`to_jsonl` — one JSON object per line (metric series, then span
  trees), suitable for log shipping or offline analysis.
- :func:`to_prometheus` — Prometheus text exposition format (version
  0.0.4): ``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` lines
  with ``le`` labels, ``_sum`` / ``_count`` for histograms.
- :func:`summary` — a human-readable table for terminals and CI logs.
"""

from __future__ import annotations

import json
from typing import List, Optional

from . import trace as _trace
from .metrics import REGISTRY, MetricsRegistry

__all__ = ["summary", "to_jsonl", "to_prometheus"]


def _labels_text(labels: dict, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render every family in Prometheus text exposition format."""
    reg = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for family in reg.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind == "histogram":
                for upper, count in series["buckets"]:
                    le = _labels_text(labels, f'le="{_fmt(upper)}"')
                    lines.append(f"{name}_bucket{le} {count}")
                lines.append(f"{name}_sum{_labels_text(labels)} {series['sum']!r}")
                lines.append(f"{name}_count{_labels_text(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)} {_fmt(series['value'])}")
    return "\n".join(lines) + "\n"


def to_jsonl(
    path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    spans: bool = True,
) -> str:
    """Dump metrics (and optionally span trees) as JSON lines.

    Returns the payload; also writes it to ``path`` when given.
    """
    reg = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for family in reg.collect():
        for series in family["series"]:
            record = {
                "type": "metric",
                "name": family["name"],
                "kind": family["kind"],
                "labels": series["labels"],
            }
            if family["kind"] == "histogram":
                record["count"] = series["count"]
                record["sum"] = series["sum"]
                record["buckets"] = series["buckets"]
            else:
                record["value"] = series["value"]
            lines.append(json.dumps(record, sort_keys=True))
    if spans:
        for root in _trace.recent_spans():
            lines.append(
                json.dumps({"type": "span", "tree": root.to_dict()}, sort_keys=True)
            )
    payload = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
    return payload


def summary(registry: Optional[MetricsRegistry] = None) -> str:
    """Human-readable table of every non-empty metric series."""
    reg = registry if registry is not None else REGISTRY
    rows: List[tuple] = []
    for family in reg.collect():
        for series in family["series"]:
            labels = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
            if family["kind"] == "histogram":
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                value = f"count={count} mean={mean:.6g}s"
            else:
                value = _fmt(series["value"])
            rows.append((family["name"], family["kind"], labels, value))
    if not rows:
        return "(no metrics recorded)"
    widths = [max(len(str(r[i])) for r in rows) for i in range(3)]
    header = ("metric".ljust(widths[0]), "kind".ljust(widths[1]), "labels".ljust(widths[2]))
    lines = [
        f"{header[0]}  {header[1]}  {header[2]}  value",
        "-" * (sum(widths) + len("value") + 6),
    ]
    for name, kind, labels, value in rows:
        lines.append(
            f"{name.ljust(widths[0])}  {kind.ljust(widths[1])}  "
            f"{labels.ljust(widths[2])}  {value}"
        )
    return "\n".join(lines)
