"""Observability: metrics, tracing, and exporters for the whole stack.

Quickstart::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    model.fit(data, y)                # planner/cache/kernel series record
    print(obs.summary())              # terminal table
    obs.to_jsonl("metrics.jsonl")     # machine-readable dump
    text = obs.to_prometheus()        # scrape-format exposition
    tree = obs.recent_spans()[-1]     # last completed span tree
    print(tree.render())

Everything is a no-op (one boolean check) when disabled, so
instrumentation stays in place permanently.  Depends only on the
standard library and numpy — importable from every layer.
"""

from .export import summary, to_jsonl, to_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_registry,
)
from .trace import (
    Span,
    annotate,
    clear_spans,
    current_span,
    recent_spans,
    span,
    traced,
)

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "annotate",
    "clear_spans",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "recent_spans",
    "span",
    "summary",
    "to_jsonl",
    "to_prometheus",
    "traced",
]


def reset() -> None:
    """Zero all metric series and drop recorded spans (test helper)."""
    REGISTRY.reset()
    clear_spans()
