"""Churn prediction over normalized data: the paper's motivating example.

Section 2 of the paper motivates Morpheus with an insurance analyst who joins
``Customers (CustomerID, Churn, Age, Income, EmployerID)`` with
``Employers (EmployerID, Revenue, Country)`` to train a churn classifier.
This example builds that scenario end to end:

* generate the two base tables (with a categorical ``Country`` column that is
  one-hot encoded into sparse features),
* let the ``morpheus`` factory decide -- via the heuristic decision rule --
  whether to factorize,
* train logistic regression on a train split and evaluate on a held-out split,
* compare wall-clock time and model quality of the factorized ("F") and
  materialized ("M") executions.

Run with::

    python examples/churn_prediction.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import LogisticRegressionGD, NormalizedMatrix
from repro.core.decision import DecisionRule
from repro.ml import accuracy, binarize_labels, standardize, train_test_split_rows
from repro.relational import Table, encode_features, pk_fk_indicator


def build_tables(num_customers: int = 100_000, num_employers: int = 1_000, seed: int = 1):
    rng = np.random.default_rng(seed)
    employer_ids = np.concatenate([
        np.arange(num_employers),
        rng.integers(0, num_employers, size=num_customers - num_employers),
    ])
    rng.shuffle(employer_ids)
    customers = Table("customers", {
        "customer_id": np.arange(num_customers),
        "age": rng.uniform(18, 80, size=num_customers),
        "income": rng.uniform(15, 250, size=num_customers),
        "employer_id": employer_ids,
    })
    countries = rng.choice(np.array(["us", "uk", "de", "in", "br", "jp", "fr", "cn"]),
                           size=num_employers)
    industries = rng.choice(np.array([f"industry_{i}" for i in range(100)]), size=num_employers)
    employers = Table("employers", {
        "employer_id": np.arange(num_employers),
        "revenue": rng.uniform(0.5, 900, size=num_employers),
        "headcount": rng.uniform(10, 10_000, size=num_employers),
        "founded": rng.uniform(1900, 2016, size=num_employers),
        "country": countries,
        "industry": industries,
    })
    return customers, employers


def main() -> None:
    customers, employers = build_tables()

    # Encode features: numeric columns pass through (standardized so gradient
    # descent behaves), Country and Industry are one-hot encoded.
    entity = standardize(encode_features(customers, columns=["age", "income"],
                                         sparse=False).matrix)
    attribute = encode_features(
        employers, columns=["revenue", "headcount", "founded", "country", "industry"],
        sparse=False).matrix
    attribute[:, :3] = standardize(attribute[:, :3])
    indicator, fk_labels = pk_fk_indicator(customers, "employer_id", employers, "employer_id")

    normalized = NormalizedMatrix(entity, [indicator], [attribute])
    rule = DecisionRule()
    print("schema statistics:",
          f"tuple ratio={normalized.tuple_ratio:.1f},",
          f"feature ratio={normalized.feature_ratio:.1f}")
    print("decision rule:", rule.explain(normalized.tuple_ratio, normalized.feature_ratio))

    # Synthesize a churn target correlated with the joined features (the
    # analyst's hunch: employees of rich employers in rich countries churn less).
    materialized = np.asarray(normalized.materialize())
    rng = np.random.default_rng(7)
    weights = rng.standard_normal((materialized.shape[1], 1))
    churn = binarize_labels(materialized @ weights + 0.3 * rng.standard_normal((materialized.shape[0], 1)),
                            threshold=0.0)

    train_idx, test_idx = train_test_split_rows(customers.num_rows, test_fraction=0.25, seed=3)

    # The split happens on the entity table; the attribute table is untouched,
    # so the train view is just another normalized matrix.
    train_normalized = NormalizedMatrix(entity[train_idx], [indicator[train_idx, :]], [attribute])
    test_normalized = NormalizedMatrix(entity[test_idx], [indicator[test_idx, :]], [attribute])
    train_materialized = materialized[train_idx]
    test_materialized = materialized[test_idx]

    settings = dict(max_iter=50, step_size=5e-3, update="exact")

    start = time.perf_counter()
    factorized = LogisticRegressionGD(**settings).fit(train_normalized, churn[train_idx])
    factorized_seconds = time.perf_counter() - start

    start = time.perf_counter()
    standard = LogisticRegressionGD(**settings).fit(train_materialized, churn[train_idx])
    materialized_seconds = time.perf_counter() - start

    factorized_accuracy = accuracy(churn[test_idx], factorized.predict(test_normalized))
    standard_accuracy = accuracy(churn[test_idx], standard.predict(test_materialized))

    print(f"\nfactorized  (F): {factorized_seconds:.3f}s, test accuracy {factorized_accuracy:.3f}")
    print(f"materialized(M): {materialized_seconds:.3f}s, test accuracy {standard_accuracy:.3f}")
    print(f"speed-up of F over M: {materialized_seconds / factorized_seconds:.2f}x")
    print("identical models:", bool(np.allclose(factorized.coef_, standard.coef_, atol=1e-8)))


if __name__ == "__main__":
    main()
