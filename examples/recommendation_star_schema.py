"""Star-schema recommendation data: ratings joined with users and movies.

Section 3.5 of the paper motivates the multi-table extension with
recommendation systems: a ratings table with two foreign keys into a users
table and a movies table.  This example builds a MovieLens-style star schema,
wraps it in a multi-join normalized matrix and runs two of the paper's
algorithms -- least-squares rating prediction and K-Means user-item
clustering -- comparing factorized and materialized execution.

Run with::

    python examples/recommendation_star_schema.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import KMeans, LinearRegressionNE, NormalizedMatrix
from repro.ml import root_mean_squared_error, standardize
from repro.relational import Table, encode_features, pk_fk_indicator


def build_star_schema(num_ratings: int = 100_000, num_users: int = 1_000,
                      num_movies: int = 500, seed: int = 2):
    rng = np.random.default_rng(seed)

    def fk(num_rows: int, num_keys: int) -> np.ndarray:
        values = np.concatenate([np.arange(num_keys),
                                 rng.integers(0, num_keys, size=num_rows - num_keys)])
        rng.shuffle(values)
        return values

    ratings = Table("ratings", {
        "rating_id": np.arange(num_ratings),
        "user_id": fk(num_ratings, num_users),
        "movie_id": fk(num_ratings, num_movies),
    })
    users = Table("users", {
        "user_id": np.arange(num_users),
        "age": rng.uniform(15, 75, size=num_users),
        "activity": rng.uniform(0, 1, size=num_users),
        "gender": rng.choice(np.array(["m", "f"]), size=num_users),
        "occupation": rng.choice(np.array([f"occupation_{i}" for i in range(20)]),
                                 size=num_users),
    })
    movies = Table("movies", {
        "movie_id": np.arange(num_movies),
        "year": rng.integers(1950, 2017, size=num_movies).astype(float),
        "budget": rng.uniform(0.1, 300, size=num_movies),
        "genre": rng.choice(np.array(["drama", "comedy", "action", "scifi", "doc",
                                      "romance", "thriller", "animation", "war", "noir"]),
                            size=num_movies),
        "country": rng.choice(np.array([f"country_{i}" for i in range(30)]), size=num_movies),
    })
    return ratings, users, movies


def main() -> None:
    ratings, users, movies = build_star_schema()

    user_features = encode_features(users, columns=["age", "activity", "gender", "occupation"],
                                    sparse=False).matrix
    movie_features = encode_features(movies, columns=["year", "budget", "genre", "country"],
                                     sparse=False).matrix
    # Standardize the numeric columns (age/activity, year/budget) so the squared
    # distances in K-Means are not dominated by the raw year/budget scales.
    user_features[:, :2] = standardize(user_features[:, :2])
    movie_features[:, :2] = standardize(movie_features[:, :2])
    k_users, _ = pk_fk_indicator(ratings, "user_id", users, "user_id")
    k_movies, _ = pk_fk_indicator(ratings, "movie_id", movies, "movie_id")

    # The ratings table itself contributes no features (like Movies/Yelp in the
    # paper): the entity block is empty and the normalized matrix has two joins.
    normalized = NormalizedMatrix(None, [k_users, k_movies], [user_features, movie_features])
    materialized = np.asarray(normalized.materialize())
    print(f"star schema: T is {materialized.shape}, base tables hold "
          f"{user_features.size + movie_features.size} values "
          f"({normalized.redundancy_ratio():.1f}x redundancy avoided)")

    # Synthetic star ratings driven by the joined features.
    rng = np.random.default_rng(11)
    weights = rng.standard_normal((materialized.shape[1], 1)) * 0.2
    stars = np.clip(3.0 + materialized @ weights + 0.2 * rng.standard_normal((materialized.shape[0], 1)),
                    1.0, 5.0)

    # --- Rating prediction with least squares ------------------------------
    start = time.perf_counter()
    factorized_model = LinearRegressionNE().fit(normalized, stars)
    factorized_seconds = time.perf_counter() - start
    start = time.perf_counter()
    standard_model = LinearRegressionNE().fit(materialized, stars)
    materialized_seconds = time.perf_counter() - start
    rmse = root_mean_squared_error(stars, factorized_model.predict(normalized))
    print(f"\nlinear regression: F {factorized_seconds:.3f}s vs M {materialized_seconds:.3f}s "
          f"({materialized_seconds / factorized_seconds:.2f}x), RMSE {rmse:.3f}")
    print("identical coefficients:",
          bool(np.allclose(factorized_model.coef_, standard_model.coef_, atol=1e-6)))

    # --- Clustering ratings in the joined feature space --------------------
    start = time.perf_counter()
    factorized_kmeans = KMeans(num_clusters=8, max_iter=10, seed=5).fit(normalized)
    factorized_seconds = time.perf_counter() - start
    start = time.perf_counter()
    standard_kmeans = KMeans(num_clusters=8, max_iter=10, seed=5).fit(materialized)
    materialized_seconds = time.perf_counter() - start
    print(f"k-means: F {factorized_seconds:.3f}s vs M {materialized_seconds:.3f}s "
          f"({materialized_seconds / factorized_seconds:.2f}x)")
    print("identical assignments:",
          bool(np.array_equal(factorized_kmeans.labels_, standard_kmeans.labels_)))
    sizes = np.bincount(factorized_kmeans.labels_, minlength=8)
    print("cluster sizes:", sizes.tolist())


if __name__ == "__main__":
    main()
