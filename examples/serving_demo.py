"""Serving demo: train on a star schema, register the model, score online.

The end-to-end serving story of :mod:`repro.serve`:

1. build a Customers (entity) / Employers (attribute) star schema and train
   logistic regression on the normalized matrix -- no join materialized;
2. save the model into a versioned :class:`ModelRegistry`, which binds the
   weights to a fingerprint of the schema's column segments;
3. load it back as a :class:`FactorizedScorer` behind a
   :class:`ScoringService`: per-employer partial scores are precomputed, so
   a request is one dot product over the customer features plus an O(1)
   gather per join key -- the employer columns are never touched again;
4. translate natural keys (employer ids) to attribute rows with
   ``Table.positions_for_keys`` and score an ad-hoc customer;
5. refresh the employers table while serving: ``update_table`` rebuilds only
   that table's partials and swaps them in atomically.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro import LogisticRegressionGD, ModelRegistry, ScoringService
from repro.ml import binarize_labels
from repro.relational import Table, normalized_from_tables


def build_tables(num_customers: int = 2_000, num_employers: int = 80,
                 seed: int = 0) -> Tuple[Table, Table]:
    """A Customers entity table with an FK into an Employers attribute table."""
    rng = np.random.default_rng(seed)
    employer_ids = np.concatenate([
        np.arange(num_employers),
        rng.integers(0, num_employers, size=num_customers - num_employers),
    ])
    rng.shuffle(employer_ids)
    revenue = rng.uniform(1, 500, size=num_employers).round(1)
    customers = Table("customers", {
        "customer_id": np.arange(num_customers),
        "age": rng.uniform(20, 70, size=num_customers).round(1),
        "income": rng.uniform(20, 200, size=num_customers).round(1),
        "employer_id": employer_ids,
        "churned": (rng.uniform(size=num_customers)
                    < 0.2 + 0.6 * (revenue[employer_ids] < 100)).astype(float),
    })
    employers = Table("employers", {
        "employer_id": np.arange(num_employers),
        "revenue": revenue,
        "employees": rng.integers(10, 10_000, size=num_employers).astype(float),
    })
    return customers, employers


def zscore_columns(table: Table, columns) -> Tuple[Table, Dict[str, Tuple[float, float]]]:
    """Z-score feature columns; returns the scaled table and the fitted scaler.

    Serving must apply the *training-time* scaler to fresh requests and
    refreshed tables, so the (mean, std) pairs are returned explicitly.
    """
    scaler: Dict[str, Tuple[float, float]] = {}
    for name in columns:
        values = table.column(name).astype(np.float64)
        mean, std = float(values.mean()), float(values.std() or 1.0)
        scaler[name] = (mean, std)
        table = table.with_column(name, (values - mean) / std)
    return table, scaler


def train_and_register(customers: Table, employers: Table, registry_dir: Path):
    """Fit logistic regression on the normalized matrix and save it versioned."""
    customers_scaled, customer_scaler = zscore_columns(customers, ["age", "income"])
    employers_scaled, employer_scaler = zscore_columns(employers, ["revenue", "employees"])
    dataset = normalized_from_tables(
        customers_scaled,
        edges=[("employer_id", employers_scaled, "employer_id",
                ["revenue", "employees"])],
        entity_features=["age", "income"],
        target_column="churned",
        sparse=False,
    )
    labels = binarize_labels(dataset.target)
    model = LogisticRegressionGD(max_iter=120, step_size=5e-4,
                                 update="exact").fit(dataset.matrix, labels)
    registry = ModelRegistry(registry_dir)
    version = registry.save("churn", model, dataset.matrix)
    print(f"registered churn model v{version} "
          f"(schema fingerprint {registry.load('churn').fingerprint[:12]}...)")
    return registry, dataset, customer_scaler, employer_scaler


def _apply_scaler(scaler, columns, matrix: np.ndarray) -> np.ndarray:
    means = np.array([scaler[c][0] for c in columns])
    stds = np.array([scaler[c][1] for c in columns])
    return (matrix - means) / stds


def serve(registry: ModelRegistry, dataset, employers: Table,
          customer_scaler, employer_scaler) -> dict:
    """Answer point, batch and ad-hoc requests, then refresh a table mid-flight."""
    service = ScoringService(registry.scorer("churn", dataset.matrix),
                             max_batch_size=256, cache_size=1024)

    # Point + batch requests for known customers (FK lookups, no join).
    single = service.predict_row(17)
    churn_probability = service.predict_proba_rows(np.arange(100))
    print(f"customer 17 -> label {single[0]:+.0f}; "
          f"mean churn probability of first 100: {float(churn_probability.mean()):.3f}")

    # An ad-hoc request: a brand-new customer of a *known* employer.  The
    # natural key is translated to an attribute row with the key->row lookup,
    # and the training-time scaler is applied to the raw features.
    spotlight = int(employers.column("employer_id")[employers.num_rows // 2])
    employer_rows = employers.positions_for_keys("employer_id", [spotlight])
    fresh_customer = _apply_scaler(customer_scaler, ["age", "income"],
                                   np.array([[35.0, 90.0]]))
    proba = service.predict_proba(fresh_customer, employer_rows.reshape(1, 1))
    print(f"new customer at employer {spotlight} -> "
          f"churn probability {float(proba[0, 0]):.3f}")

    # Freshness: that employer's revenue collapses; rebuild only this table's
    # partial scores and swap atomically -- the service keeps answering.
    revenue = employers.column("revenue").copy()
    revenue[employer_rows[0]] = 1.0
    refreshed = employers.with_column("revenue", revenue)
    service.update_table("table_0", _apply_scaler(
        employer_scaler, ["revenue", "employees"],
        refreshed.numeric_matrix(["revenue", "employees"])))
    proba_after = service.predict_proba(fresh_customer, employer_rows.reshape(1, 1))
    print(f"after the revenue collapse (snapshot v{service.stats()['snapshot_version']}) "
          f"-> churn probability {float(proba_after[0, 0]):.3f}")

    stats = service.stats()
    print(f"served {stats['requests']} requests in {stats['micro_batches']} micro-batches "
          f"({stats['cache_hits']} cache hits)")
    return {"proba_before": float(proba[0, 0]), "proba_after": float(proba_after[0, 0]),
            "stats": stats}


def main() -> None:
    customers, employers = build_tables()
    with tempfile.TemporaryDirectory() as tmp:
        registry, dataset, customer_scaler, employer_scaler = train_and_register(
            customers, employers, Path(tmp) / "registry")
        serve(registry, dataset, employers, customer_scaler, employer_scaler)


if __name__ == "__main__":
    main()
