"""Table 7 end to end: all four ML algorithms on all seven real-dataset stand-ins.

The paper's Table 7 reports the materialized runtime (``M``) and the Morpheus
speed-up (``Sp``) of linear regression, logistic regression, K-Means and GNMF
on seven real multi-table datasets.  This script regenerates that table over
the synthetic stand-ins from :mod:`repro.datasets.realworld` (same schemas and
sparsity, scaled down -- see docs/paper_map.md) and prints it in the paper's layout.

Run with::

    python examples/real_datasets_study.py [scale]

where ``scale`` (default 0.01) controls the dataset sizes.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.datasets.registry import list_real_datasets, load_real_dataset
from repro.bench.reporting import format_table, print_report
from repro.ml import GNMF, KMeans, LinearRegressionNE, LogisticRegressionGD

ITERATIONS = 10
CENTROIDS = 10
TOPICS = 5


def time_pair(fit_materialized, fit_factorized) -> tuple[float, float]:
    start = time.perf_counter()
    fit_materialized()
    materialized_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fit_factorized()
    factorized_seconds = time.perf_counter() - start
    return materialized_seconds, factorized_seconds


def study_dataset(name: str, scale: float) -> list:
    dataset = load_real_dataset(name, scale=scale, seed=0)
    normalized = dataset.normalized
    materialized = dataset.materialized
    binary_target = dataset.binary_target
    numeric_target = dataset.target

    rows = []

    lin_m, lin_f = time_pair(
        lambda: LinearRegressionNE().fit(materialized, numeric_target),
        lambda: LinearRegressionNE().fit(normalized, numeric_target))
    rows.append(("Lin. Reg.", lin_m, lin_m / lin_f))

    log_m, log_f = time_pair(
        lambda: LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4).fit(materialized, binary_target),
        lambda: LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4).fit(normalized, binary_target))
    rows.append(("Log. Reg.", log_m, log_m / log_f))

    km_m, km_f = time_pair(
        lambda: KMeans(num_clusters=CENTROIDS, max_iter=ITERATIONS, seed=0).fit(materialized),
        lambda: KMeans(num_clusters=CENTROIDS, max_iter=ITERATIONS, seed=0).fit(normalized))
    rows.append(("K-Means", km_m, km_m / km_f))

    gn_m, gn_f = time_pair(
        lambda: GNMF(rank=TOPICS, max_iter=ITERATIONS, seed=0).fit(abs(materialized)),
        lambda: GNMF(rank=TOPICS, max_iter=ITERATIONS, seed=0).fit(normalized.apply(np.abs)))
    rows.append(("GNMF", gn_m, gn_m / gn_f))

    return rows


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    table_rows = []
    for name in list_real_datasets():
        per_algorithm = study_dataset(name, scale)
        row = [name]
        for _, materialized_seconds, speedup in per_algorithm:
            row.extend([f"{materialized_seconds:.2f}", f"{speedup:.1f}x"])
        table_rows.append(row)
        print(f"finished {name}")

    headers = ["dataset",
               "LinReg M (s)", "Sp", "LogReg M (s)", "Sp",
               "K-Means M (s)", "Sp", "GNMF M (s)", "Sp"]
    print_report(f"Table 7 (stand-ins, scale={scale}): materialized runtime and Morpheus speed-up",
                 format_table(headers, table_rows))


if __name__ == "__main__":
    main()
