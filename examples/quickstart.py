"""Quickstart: build a normalized matrix from two CSV files and use it.

This mirrors the construction snippet in Section 3.2 of the paper: read the
entity table ``S`` and the attribute table ``R`` from CSV, build the sparse
indicator matrix ``K`` from the foreign key, wrap everything in a
``NormalizedMatrix`` and then run linear-algebra operators and an ML algorithm
directly on it -- no join is ever materialized.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import LogisticRegressionGD, NormalizedMatrix, read_csv
from repro.ml import accuracy, binarize_labels, standardize
from repro.relational import pk_fk_indicator, write_csv
from repro.relational.table import Table


def write_example_tables(directory: Path) -> tuple[Path, Path]:
    """Create a tiny Customers / Employers pair of CSV files."""
    rng = np.random.default_rng(0)
    num_customers, num_employers = 1_000, 50
    employer_ids = np.concatenate([
        np.arange(num_employers),
        rng.integers(0, num_employers, size=num_customers - num_employers),
    ])
    rng.shuffle(employer_ids)
    customers = Table("customers", {
        "customer_id": np.arange(num_customers),
        "age": rng.uniform(20, 70, size=num_customers).round(1),
        "income": rng.uniform(20, 200, size=num_customers).round(1),
        "employer_id": employer_ids,
    })
    employers = Table("employers", {
        "employer_id": np.arange(num_employers),
        "revenue": rng.uniform(1, 500, size=num_employers).round(1),
        "employees": rng.integers(10, 10_000, size=num_employers).astype(float),
    })
    customers_path = directory / "customers.csv"
    employers_path = directory / "employers.csv"
    write_csv(customers, customers_path)
    write_csv(employers, employers_path)
    return customers_path, employers_path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        customers_path, employers_path = write_example_tables(Path(tmp))

        # 1. Read the base tables (the paper's read.csv step).
        customers = read_csv(customers_path)
        employers = read_csv(employers_path)

        # 2. Build the indicator matrix K from the foreign key and wrap the
        #    base feature matrices in a normalized matrix.
        entity_features = standardize(customers.numeric_matrix(["age", "income"]))
        attribute_features = standardize(employers.numeric_matrix(["revenue", "employees"]))
        indicator, _ = pk_fk_indicator(customers, "employer_id", employers, "employer_id")
        normalized = NormalizedMatrix(entity_features, [indicator], [attribute_features])
        print(f"normalized matrix: shape={normalized.shape}, "
              f"tuple ratio={normalized.tuple_ratio:.1f}, "
              f"feature ratio={normalized.feature_ratio:.1f}, "
              f"redundancy={normalized.redundancy_ratio():.1f}x")

        # 3. Linear algebra over the normalized matrix -- every operator of
        #    Table 1 works and never materializes the join.
        print("column sums:", np.round(normalized.colsums().ravel(), 1))
        print("gram matrix shape:", normalized.crossprod().shape)
        weights = np.ones((normalized.shape[1], 1)) * 0.01
        print("first scores:", np.round((normalized @ weights)[:3].ravel(), 3))

        # 4. Train an ML algorithm directly on the normalized matrix.
        true_weights = np.array([[1.0], [0.5], [0.8], [-0.6]])
        target = binarize_labels(np.asarray(normalized @ true_weights), threshold=0.0)
        model = LogisticRegressionGD(max_iter=100, step_size=1e-2, update="exact")
        model.fit(normalized, target)
        predictions = model.predict(normalized)
        print(f"training accuracy of factorized logistic regression: "
              f"{accuracy(target, predictions):.3f}")

        # 5. The factorized result is identical to training on the join output.
        materialized = np.asarray(normalized.materialize())
        standard = LogisticRegressionGD(max_iter=100, step_size=1e-2, update="exact")
        standard.fit(materialized, target)
        print("factorized == materialized coefficients:",
              bool(np.allclose(model.coef_, standard.coef_)))

        # 6. Lazy evaluation: build operator graphs instead of executing
        #    immediately; join-invariant subexpressions are memoized across
        #    iterations in a per-matrix FactorizedCache.
        lazy = NormalizedMatrix(entity_features, [indicator], [attribute_features]).lazy()
        lazy.crossprod().evaluate()       # computed via the factorized rewrite ...
        lazy.crossprod().evaluate()       # ... then served from the cache
        stats = lazy.cache.stats()
        print(f"lazy crossprod cache: hits={stats.hits}, misses={stats.misses}")
        lazy_model = LogisticRegressionGD(max_iter=100, step_size=1e-2,
                                          update="exact", engine="lazy")
        lazy_model.fit(lazy, target)
        print("lazy == eager coefficients:",
              bool(np.allclose(lazy_model.coef_, model.coef_, rtol=1e-8, atol=1e-10)))


if __name__ == "__main__":
    main()
