"""M:N joins: how the join-attribute uniqueness degree drives the speed-ups.

Section 3.6 and Figure 4 of the paper study general M:N equi-joins: as the
join attribute's domain size ``n_U`` shrinks, every base tuple matches more
tuples on the other side, the join output blows up and factorized execution
wins by up to two orders of magnitude.  This example sweeps the uniqueness
degree ``n_U / n_S`` and reports LMM and cross-product runtimes for the
materialized and factorized versions, in the same layout as Figure 4.

Run with::

    python examples/mn_join_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import compare
from repro.bench.reporting import format_speedup_rows, print_report
from repro.datasets.synthetic import SyntheticMNConfig, generate_mn


def sweep(uniqueness_degrees=(0.01, 0.05, 0.1, 0.25, 0.5), num_rows: int = 1_000,
          num_features: int = 30):
    lmm_results, crossprod_results = [], []
    rng = np.random.default_rng(3)
    for degree in uniqueness_degrees:
        domain = max(1, int(round(degree * num_rows)))
        dataset = generate_mn(SyntheticMNConfig(num_rows=num_rows, num_features=num_features,
                                                domain_size=domain, seed=0))
        materialized = dataset.materialized
        normalized = dataset.normalized
        operand = rng.standard_normal((materialized.shape[1], 2))
        parameters = {"uniqueness_degree": degree, "output_rows": dataset.output_rows}
        lmm_results.append(compare(
            lambda m=materialized, x=operand: m @ x,
            lambda n=normalized, x=operand: n @ x,
            parameters, repeats=3))
        crossprod_results.append(compare(
            lambda m=materialized: m.T @ m,
            lambda n=normalized: n.crossprod(),
            parameters, repeats=2))
    return lmm_results, crossprod_results


def main() -> None:
    lmm_results, crossprod_results = sweep()
    print_report(
        "Figure 4(a): LMM over an M:N join",
        format_speedup_rows(lmm_results, ["uniqueness_degree", "output_rows"]))
    print_report(
        "Figure 4(b): cross-product over an M:N join",
        format_speedup_rows(crossprod_results, ["uniqueness_degree", "output_rows"]))
    best = max(r.speedup for r in crossprod_results)
    print(f"largest cross-product speed-up in this sweep: {best:.1f}x "
          "(grows further as the uniqueness degree shrinks or the tables grow)")


if __name__ == "__main__":
    main()
