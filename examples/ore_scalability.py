"""Tables 9 and 10: Morpheus on an out-of-core (ORE-style) backend.

The paper's scalability study runs logistic regression on Oracle R Enterprise,
where every pass over the data is streamed through ``ore.rowapply``.  This
example uses the library's :class:`~repro.la.ChunkedMatrix` substitute (see
docs/paper_map.md): the materialized version streams the wide join output one row
chunk at a time, while the factorized version works on the base-table matrices
directly, so its runtime barely moves as the feature ratio or the join fan-out
grows.

Run with::

    python examples/ore_scalability.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.reporting import format_table, print_report
from repro.datasets.synthetic import (
    SyntheticMNConfig,
    SyntheticPKFKConfig,
    generate_mn,
    generate_pk_fk,
)
from repro.la.chunked import ChunkedMatrix
from repro.ml import LogisticRegressionGD

CHUNK_ROWS = 2_048
ITERATIONS = 3


def timed_fit(data, target) -> float:
    model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
    start = time.perf_counter()
    model.fit(data, target)
    return time.perf_counter() - start


def pk_fk_study(feature_ratios=(0.5, 1, 2, 4)) -> list:
    rows = []
    for feature_ratio in feature_ratios:
        config = SyntheticPKFKConfig.from_ratios(
            tuple_ratio=10, feature_ratio=feature_ratio,
            num_attribute_rows=2_000, num_entity_features=20, seed=0)
        dataset = generate_pk_fk(config)
        chunked = ChunkedMatrix.from_matrix(dataset.materialized, CHUNK_ROWS)
        materialized_seconds = timed_fit(chunked, dataset.target)
        factorized_seconds = timed_fit(dataset.normalized, dataset.target)
        rows.append([f"{feature_ratio:g}", f"{materialized_seconds:.3f}",
                     f"{factorized_seconds:.3f}",
                     f"{materialized_seconds / factorized_seconds:.1f}x"])
    return rows


def mn_study(uniqueness_degrees=(0.5, 0.1, 0.02)) -> list:
    rows = []
    for degree in uniqueness_degrees:
        num_rows = 1_000
        config = SyntheticMNConfig(num_rows=num_rows, num_features=30,
                                   domain_size=max(1, int(round(degree * num_rows))), seed=0)
        dataset = generate_mn(config)
        chunked = ChunkedMatrix.from_matrix(dataset.materialized, CHUNK_ROWS)
        materialized_seconds = timed_fit(chunked, dataset.target)
        factorized_seconds = timed_fit(dataset.normalized, dataset.target)
        rows.append([f"{degree:g}", f"{dataset.output_rows}", f"{materialized_seconds:.3f}",
                     f"{factorized_seconds:.3f}",
                     f"{materialized_seconds / factorized_seconds:.1f}x"])
    return rows


def main() -> None:
    print_report(
        "Table 9 (chunked backend): logistic regression over a PK-FK join",
        format_table(["feature ratio", "materialized (s)", "factorized (s)", "speed-up"],
                     pk_fk_study()))
    print_report(
        "Table 10 (chunked backend): logistic regression over an M:N join",
        format_table(["uniqueness degree", "join output rows", "materialized (s)",
                      "factorized (s)", "speed-up"],
                     mn_study()))


if __name__ == "__main__":
    main()
