"""Observability demo: one instrumented fit / delta / serve run, exported.

Turns the obs layer on, runs a small end-to-end workload -- an auto-planned
gradient-descent fit on a normalized star schema, a lazy fit that warms the
memoization cache, a row delta absorbed by both the cache and the serving
partials, micro-batched scoring and a top-k query -- and then prints the
span tree, the plan's predicted-vs-measured line and the metrics summary,
and writes the JSON-lines and Prometheus exports next to the benchmark
results (CI uploads them as artifacts).

Run with::

    python examples/observability_demo.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro import LinearRegressionGD, NormalizedMatrix, obs
from repro.core.delta import MatrixDelta
from repro.la.ops import indicator_from_labels
from repro.ml import ServingExport
from repro.serve import FactorizedScorer, ScoringService

DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"


def build_star_schema(n_s: int = 5_000, n_r: int = 100, d_s: int = 4,
                      d_r: int = 6, seed: int = 0):
    rng = np.random.default_rng(seed)
    entity = rng.standard_normal((n_s, d_s))
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.concatenate([np.arange(n_r),
                             rng.integers(0, n_r, size=n_s - n_r)])
    indicator = indicator_from_labels(labels, num_columns=n_r)
    return NormalizedMatrix(entity, [indicator], [attribute]), rng


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    output_dir = pathlib.Path(args[0]) if args else DEFAULT_OUTPUT
    output_dir.mkdir(parents=True, exist_ok=True)

    obs.enable()
    normalized, rng = build_star_schema()
    target = rng.standard_normal(normalized.shape[0])

    # 1. Auto-planned fit: the planner picks the engine/backend, the obs layer
    # records the choice, and the measured runtime lands back on the plan.
    model = LinearRegressionGD(engine="auto", max_iter=5).fit(normalized, target)
    print("== plan (with feedback) ==")
    print(model.plan_.explain())
    print()

    # 2. Lazy fit: the join-invariant terms hit the memoization cache.
    LinearRegressionGD(engine="lazy", max_iter=5).fit(normalized, target)

    # 3. A row delta, absorbed incrementally by the lazy cache...
    delta = MatrixDelta.upsert(
        rng.choice(normalized.attributes[0].shape[0], size=3, replace=False),
        rng.standard_normal((3, normalized.attributes[0].shape[1])),
        normalized.attributes[0])
    normalized.lazy().crossprod().evaluate()
    normalized.apply_delta(0, delta)

    # 4. ... and by the serving partials, between scoring traffic.
    export = ServingExport("linear_regression",
                           rng.standard_normal((normalized.logical_cols, 2)))
    service = ScoringService(
        FactorizedScorer(export, normalized, zone_block_size=256),
        max_batch_size=64)
    service.score_rows(np.arange(512))
    service.apply_delta(0, delta)
    service.top_k(10)

    print("== span trees ==")
    for root in obs.recent_spans():
        print(root.render())
    print()
    print("== metrics ==")
    print(obs.summary())

    jsonl_path = output_dir / "obs_demo.jsonl"
    prom_path = output_dir / "obs_demo.prom"
    obs.to_jsonl(str(jsonl_path))
    prom_path.write_text(obs.to_prometheus())
    print()
    print(f"wrote {jsonl_path} and {prom_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
